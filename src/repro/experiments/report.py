"""Text rendering of experiment outputs in the paper's table format."""

from __future__ import annotations



from repro.core.switching import SwitchEvaluation

from .tables import BaselineComparison, ClassifierTable, FeatureGainTable

__all__ = [
    "render_classifier_table",
    "render_confusion_matrix",
    "render_feature_gains",
    "render_switch_evaluation",
    "render_baseline_comparison",
]


def render_classifier_table(table: ClassifierTable, title: str) -> str:
    """Render the TP/FP/Precision/Recall rows (Tables 3/6/8/10 style)."""
    report = table.report
    lines = [
        f"{title}  [{table.protocol}]",
        f"{'Class':<16}{'TP Rate':>9}{'FP Rate':>9}{'Precision':>11}{'Recall':>8}",
    ]
    for row in report.classes:
        lines.append(
            f"{str(row.label):<16}{row.tp_rate:>9.3f}{row.fp_rate:>9.3f}"
            f"{row.precision:>11.3f}{row.recall:>8.3f}"
        )
    lines.append(
        f"{'weighted avg.':<16}{report.weighted_tp_rate:>9.3f}"
        f"{report.weighted_fp_rate:>9.3f}{report.weighted_precision:>11.3f}"
        f"{report.weighted_recall:>8.3f}"
    )
    lines.append(f"overall accuracy: {report.accuracy:.3f}")
    return "\n".join(lines)


def render_confusion_matrix(table: ClassifierTable, title: str) -> str:
    """Render the row-percentage confusion matrix (Tables 4/7/9/11 style)."""
    report = table.report
    matrix = report.row_percentages()
    labels = [str(label) for label in report.labels]
    width = max(14, max(len(label) for label in labels) + 2)
    header = " " * width + "".join(f"{label:>{width}}" for label in labels)
    lines = [f"{title}  (rows: truth, cols: predicted, %)", header]
    for i, label in enumerate(labels):
        cells = "".join(f"{matrix[i, j]:>{width}.1f}" for j in range(len(labels)))
        lines.append(f"{label:<{width}}{cells}")
    return "\n".join(lines)


def render_feature_gains(table: FeatureGainTable, title: str) -> str:
    """Render a Table 2 / Table 5 style info-gain ranking."""
    lines = [title, f"{'info. gain':>10}  feature"]
    for name, gain in sorted(table.rows, key=lambda r: -r[1]):
        lines.append(f"{gain:>10.3f}  {name}")
    lines.append(
        f"chunk-derived feature share: {table.chunk_feature_share():.0%}"
    )
    return "\n".join(lines)


def render_switch_evaluation(
    evaluation: SwitchEvaluation, title: str
) -> str:
    """Render the §4.3 / §5.6 switch-detection percentages."""
    return "\n".join(
        [
            title,
            f"threshold STD(CUSUM(Δsize×Δt)) = {evaluation.threshold:.0f}",
            f"sessions without switches correctly below threshold: "
            f"{evaluation.accuracy_without:.1%} (n={evaluation.n_without})",
            f"sessions with switches correctly above threshold:    "
            f"{evaluation.accuracy_with:.1%} (n={evaluation.n_with})",
        ]
    )


def render_baseline_comparison(
    comparison: BaselineComparison, title: str
) -> str:
    """Render the Prometheus-baseline comparison."""
    return "\n".join(
        [
            title,
            f"Prometheus-style binary (QoS features only): "
            f"{comparison.baseline_binary_accuracy:.1%}",
            f"paper model, 3-class task:                   "
            f"{comparison.model_three_class_accuracy:.1%}",
            f"paper model collapsed to binary task:        "
            f"{comparison.model_binary_accuracy:.1%}",
        ]
    )
