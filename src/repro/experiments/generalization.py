"""Generalisation to other streaming services (§7, the paper's future work).

§7: "our analysis of other popular video streaming services such as
Vevo, Vimeo, Dailymotion and so on, has revealed that they have adopted
the same technologies that YouTube is using [...] This common set of
characteristics is a strong indicator that our methodology can be
generalized to a number of other streaming services."

This module puts that claim to the test inside the simulation: it
defines service profiles with *different* encoding ladders, segment
sizing and pacing (but the same underlying delivery mechanics), plays
corpora of sessions for each, and evaluates the YouTube-trained
detectors on them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.core.labeling import has_variation
from repro.datasets.preparation import record_from_video_session
from repro.datasets.schema import SessionRecord
from repro.network.mobility import STATIC_USER, MobilityModel
from repro.network.path import NetworkPath, Outage
from repro.streaming.adaptive import AdaptivePlayer, AdaptivePlayerConfig
from repro.streaming.catalog import QualityLevel, VideoCatalog

__all__ = ["ServiceProfile", "OTHER_SERVICES", "generate_service_records",
           "GeneralizationResult", "evaluate_generalization"]


@dataclass(frozen=True)
class ServiceProfile:
    """Delivery characteristics of a (simulated) non-YouTube service.

    The ladder rungs reuse synthetic itags above 9000 so they can never
    collide with the YouTube ones.
    """

    name: str
    ladder: Sequence[QualityLevel]
    segment_media_s: float
    max_buffer_s: float
    quality_caps: Dict[int, float]


def _ladder(entries) -> List[QualityLevel]:
    return [
        QualityLevel(resolution_p=r, itag=itag, bitrate_kbps=b, adaptive=True)
        for r, itag, b in entries
    ]


#: Vimeo-like: slightly heavier encodes, longer segments, bigger buffer.
#: Dailymotion-like: lighter encodes, shorter segments.
OTHER_SERVICES: Dict[str, ServiceProfile] = {
    "vimeo-like": ServiceProfile(
        name="vimeo-like",
        ladder=_ladder(
            [
                (240, 9001, 330.0),
                (360, 9002, 650.0),
                (480, 9003, 1200.0),
                (720, 9004, 2800.0),
                (1080, 9005, 5000.0),
            ]
        ),
        segment_media_s=8.0,
        max_buffer_s=40.0,
        quality_caps={240: 0.30, 360: 0.30, 480: 0.25, 720: 0.12, 1080: 0.03},
    ),
    "dailymotion-like": ServiceProfile(
        name="dailymotion-like",
        ladder=_ladder(
            [
                (144, 9011, 95.0),
                (240, 9012, 210.0),
                (380, 9013, 420.0),
                (480, 9014, 850.0),
                (720, 9015, 1900.0),
            ]
        ),
        segment_media_s=4.0,
        max_buffer_s=24.0,
        quality_caps={240: 0.40, 380: 0.30, 480: 0.22, 720: 0.08},
    ),
}


def generate_service_records(
    service: ServiceProfile,
    n_sessions: int,
    seed: int = 0,
    mobility: MobilityModel = STATIC_USER,
) -> List[SessionRecord]:
    """Simulate an adaptive corpus on another service's delivery stack."""
    rng = np.random.default_rng(seed)
    catalog = VideoCatalog()
    places = mobility.walk(n_sessions, rng)
    cap_values = list(service.quality_caps)
    cap_probs = np.array(list(service.quality_caps.values()))
    cap_probs = cap_probs / cap_probs.sum()

    records: List[SessionRecord] = []
    for place in places:
        video = catalog.sample(rng)
        outages = []
        outage_prob = 0.15 * (0.4 if place.static else 1.6)
        if rng.random() < outage_prob:
            for _ in range(int(rng.integers(1, 4))):
                start = float(rng.uniform(5.0, max(10.0, video.duration_s)))
                outages.append(
                    Outage(
                        start,
                        start + float(rng.uniform(12.0, 45.0)),
                        float(rng.uniform(0.03, 0.2)),
                    )
                )
        path = NetworkPath(
            place.profile, video.duration_s * 4 + 180.0, rng, outages=outages
        )
        cap = int(rng.choice(cap_values, p=cap_probs))
        ladder = [q for q in service.ladder if q.resolution_p <= cap]
        config = AdaptivePlayerConfig(
            ladder=ladder or list(service.ladder)[:1],
            segment_media_s=service.segment_media_s,
            max_buffer_s=service.max_buffer_s,
        )
        session = AdaptivePlayer(config).play(video, path, rng, place=place.name)
        records.append(record_from_video_session(session))
    return records


@dataclass
class GeneralizationResult:
    """Per-service transfer outcome of the YouTube-trained detectors."""

    service: str
    stall_accuracy: float
    stall_healthy_recall: float
    switch_accuracy_without: float
    switch_accuracy_with: float


def evaluate_generalization(
    stall_detector: StallDetector,
    switch_detector: SwitchDetector,
    services: Dict[str, ServiceProfile] = None,
    n_sessions: int = 250,
    seed: int = 97,
) -> List[GeneralizationResult]:
    """Evaluate frozen YouTube-trained detectors on each other service."""
    if services is None:
        services = OTHER_SERVICES
    results: List[GeneralizationResult] = []
    for offset, service in enumerate(services.values()):
        records = generate_service_records(
            service, n_sessions, seed=seed + offset
        )
        usable = [
            r
            for r in records
            if r.stall_duration_s is not None and r.total_duration_s
        ]
        stall_report = stall_detector.evaluate(usable)
        healthy = stall_report.by_label().get("no stalls")
        truth = np.array([has_variation(r) for r in usable])
        switch_eval = switch_detector.evaluate(usable, truth)
        results.append(
            GeneralizationResult(
                service=service.name,
                stall_accuracy=stall_report.accuracy,
                stall_healthy_recall=healthy.recall if healthy else 0.0,
                switch_accuracy_without=switch_eval.accuracy_without,
                switch_accuracy_with=switch_eval.accuracy_with,
            )
        )
    return results
