"""Generators for every table in the paper's evaluation.

Each function returns the table's content in the paper's format (per-
class rows with TP/FP rate, precision, recall and a confusion matrix in
row percentages) plus the headline number the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.switching import SwitchEvaluation
from repro.ml.metrics import ClassificationReport

from .workspace import Workspace

__all__ = [
    "FeatureGainTable",
    "table2_stall_features",
    "table5_representation_features",
    "ClassifierTable",
    "tables3_4_stall_classifier",
    "tables6_7_representation_classifier",
    "tables8_9_encrypted_stall",
    "tables10_11_encrypted_representation",
    "section56_encrypted_switching",
    "BaselineComparison",
    "baseline_comparison",
]


@dataclass
class FeatureGainTable:
    """A (feature, information gain) ranking — Tables 2 and 5."""

    rows: List[Tuple[str, float]]

    def names(self) -> List[str]:
        return [name for name, _ in self.rows]

    def chunk_feature_share(self) -> float:
        """Fraction of selected features derived from chunk size/timing.

        The paper's qualitative claim: chunk-derived statistics dominate
        both rankings.
        """
        if not self.rows:
            return 0.0
        chunky = sum(
            1 for name, _ in self.rows if name.startswith(("chunk", "throughput", "cumsum"))
        )
        return chunky / len(self.rows)


def table2_stall_features(workspace: Workspace) -> FeatureGainTable:
    """Table 2: features selected for the stall model with info gains."""
    return FeatureGainTable(rows=workspace.stall_detector().feature_gains())


def table5_representation_features(workspace: Workspace) -> FeatureGainTable:
    """Table 5: features selected for the representation model."""
    return FeatureGainTable(
        rows=workspace.representation_detector().feature_gains()
    )


@dataclass
class ClassifierTable:
    """A classifier-output table + its confusion matrix (paper pairs)."""

    report: ClassificationReport
    protocol: str          # "balanced-train/full-test" | "cross-validation" | "cross-dataset"

    @property
    def accuracy(self) -> float:
        return self.report.accuracy

    def confusion_percent(self) -> np.ndarray:
        return self.report.row_percentages()


def tables3_4_stall_classifier(
    workspace: Workspace, protocol: str = "cross-validation"
) -> ClassifierTable:
    """Tables 3-4: the stall classifier on the cleartext corpus.

    ``protocol`` selects the paper's balanced-train/full-test protocol
    (optimistic: training instances are re-tested) or honest 10-fold CV.
    """
    detector = workspace.stall_detector()
    if protocol == "balanced-train/full-test":
        report = detector.train_report_
    else:
        report = detector.cross_validate(workspace.stall_records())
        protocol = "cross-validation"
    return ClassifierTable(report=report, protocol=protocol)


def tables6_7_representation_classifier(
    workspace: Workspace, protocol: str = "cross-validation"
) -> ClassifierTable:
    """Tables 6-7: the average-representation classifier (cleartext HAS)."""
    detector = workspace.representation_detector()
    if protocol == "balanced-train/full-test":
        report = detector.train_report_
    else:
        report = detector.cross_validate(workspace.representation_records())
        protocol = "cross-validation"
    return ClassifierTable(report=report, protocol=protocol)


def tables8_9_encrypted_stall(workspace: Workspace) -> ClassifierTable:
    """Tables 8-9: the frozen stall model applied to encrypted traffic."""
    detector = workspace.stall_detector()
    report = detector.evaluate(workspace.encrypted_stall_records())
    return ClassifierTable(report=report, protocol="cross-dataset")


def tables10_11_encrypted_representation(
    workspace: Workspace,
) -> ClassifierTable:
    """Tables 10-11: the frozen representation model on encrypted traffic."""
    detector = workspace.representation_detector()
    report = detector.evaluate(workspace.encrypted_representation_records())
    return ClassifierTable(report=report, protocol="cross-dataset")


def section56_encrypted_switching(workspace: Workspace) -> SwitchEvaluation:
    """§5.6: the frozen switch threshold applied to encrypted traffic."""
    detector = workspace.switch_detector()
    return detector.evaluate(workspace.encrypted_representation_records())


@dataclass
class BaselineComparison:
    """Paper's model vs the Prometheus-style binary baseline."""

    baseline_binary_accuracy: float
    model_three_class_accuracy: float
    model_binary_accuracy: float

    def model_wins(self) -> bool:
        """The paper's claim: 3-class model beats the binary baseline
        even when collapsed to the baseline's own binary task."""
        return self.model_binary_accuracy >= self.baseline_binary_accuracy


def baseline_comparison(workspace: Workspace) -> BaselineComparison:
    """Reproduce the §4.1/§6 comparison against Prometheus [15].

    Both systems are scored with honest cross-validation so neither is
    flattered by re-testing its own training instances.
    """
    records = workspace.stall_records()
    baseline_report = workspace.prometheus_baseline().cross_validate(records)

    detector = workspace.stall_detector()
    model_report = detector.cross_validate(records)

    # Collapse the 3-class CV confusion matrix onto the binary task for
    # a like-for-like comparison (label order: no / mild / severe).
    matrix = model_report.matrix.astype(float)
    binary_correct = matrix[0, 0] + matrix[1:, 1:].sum()
    model_binary = float(binary_correct / matrix.sum())

    return BaselineComparison(
        baseline_binary_accuracy=baseline_report.accuracy,
        model_three_class_accuracy=model_report.accuracy,
        model_binary_accuracy=model_binary,
    )
