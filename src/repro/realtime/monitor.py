"""Real-time QoE monitor: live weblogs in, diagnoses and alarms out.

Couples the :class:`~repro.realtime.tracker.OnlineSessionTracker` with a
trained :class:`~repro.core.framework.QoEFramework`: every time a video
session closes, it is diagnosed immediately, per-subscriber health is
updated, and alarm rules fire — the operator-side loop the paper's
conclusion sketches.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.capture.weblog import WeblogEntry
from repro.core.framework import QoEFramework, SessionDiagnosis

from .tracker import OnlineSessionTracker

__all__ = ["SubscriberHealth", "Alarm", "RealTimeMonitor"]


@dataclass
class SubscriberHealth:
    """Rolling per-subscriber QoE counters."""

    sessions: int = 0
    stalled: int = 0
    severe: int = 0
    low_definition: int = 0
    with_switches: int = 0

    def update(self, diagnosis: SessionDiagnosis) -> None:
        self.sessions += 1
        if diagnosis.stall_class != "no stalls":
            self.stalled += 1
        if diagnosis.stall_class == "severe stalls":
            self.severe += 1
        if diagnosis.representation_class == "LD":
            self.low_definition += 1
        if diagnosis.has_quality_switches:
            self.with_switches += 1

    @property
    def stall_ratio(self) -> float:
        return self.stalled / self.sessions if self.sessions else 0.0


@dataclass(frozen=True)
class Alarm:
    """An operator alarm raised by the monitor."""

    subscriber_id: str
    reason: str
    sessions_observed: int


class RealTimeMonitor:
    """Online monitoring loop.

    Parameters
    ----------
    framework:
        A fitted :class:`QoEFramework`.
    tracker:
        Session tracker (a default one is created if omitted).
    severe_alarm_after:
        Raise an alarm once a subscriber accumulates this many severe
        sessions.
    stall_ratio_alarm:
        Raise an alarm once a subscriber's stall ratio exceeds this
        (evaluated only after ``min_sessions_for_ratio`` sessions).
    on_diagnosis:
        Optional callback invoked with every fresh diagnosis.
    """

    def __init__(
        self,
        framework: QoEFramework,
        tracker: Optional[OnlineSessionTracker] = None,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
    ) -> None:
        if severe_alarm_after < 1:
            raise ValueError("severe_alarm_after must be >= 1")
        if not 0.0 < stall_ratio_alarm <= 1.0:
            raise ValueError("stall_ratio_alarm must be in (0, 1]")
        self.framework = framework
        self.tracker = tracker or OnlineSessionTracker()
        self.severe_alarm_after = severe_alarm_after
        self.stall_ratio_alarm = stall_ratio_alarm
        self.min_sessions_for_ratio = min_sessions_for_ratio
        self.on_diagnosis = on_diagnosis

        self.health: Dict[str, SubscriberHealth] = defaultdict(SubscriberHealth)
        self.diagnoses: List[SessionDiagnosis] = []
        self.alarms: List[Alarm] = []
        self._alarmed: set = set()

    # ------------------------------------------------------------------

    def _diagnose_closed(self, records) -> List[SessionDiagnosis]:
        if not records:
            return []
        diagnoses = self.framework.diagnose(records)
        for record, diagnosis in zip(records, diagnoses):
            subscriber = record.session_id.split("/", 1)[0]
            health = self.health[subscriber]
            health.update(diagnosis)
            self.diagnoses.append(diagnosis)
            if self.on_diagnosis is not None:
                self.on_diagnosis(diagnosis)
            self._check_alarms(subscriber, health)
        return diagnoses

    def _check_alarms(self, subscriber: str, health: SubscriberHealth) -> None:
        if subscriber in self._alarmed:
            return
        if health.severe >= self.severe_alarm_after:
            self.alarms.append(
                Alarm(
                    subscriber_id=subscriber,
                    reason=f"{health.severe} sessions with severe stalling",
                    sessions_observed=health.sessions,
                )
            )
            self._alarmed.add(subscriber)
        elif (
            health.sessions >= self.min_sessions_for_ratio
            and health.stall_ratio >= self.stall_ratio_alarm
        ):
            self.alarms.append(
                Alarm(
                    subscriber_id=subscriber,
                    reason=f"stall ratio {health.stall_ratio:.0%}",
                    sessions_observed=health.sessions,
                )
            )
            self._alarmed.add(subscriber)

    # ------------------------------------------------------------------

    def feed(self, entry: WeblogEntry) -> List[SessionDiagnosis]:
        """Feed one weblog entry; returns diagnoses of sessions it closed."""
        return self._diagnose_closed(self.tracker.observe(entry))

    def feed_many(self, entries: Iterable[WeblogEntry]) -> List[SessionDiagnosis]:
        """Feed a batch of entries (must be time-ordered per subscriber)."""
        out: List[SessionDiagnosis] = []
        for entry in entries:
            out.extend(self.feed(entry))
        return out

    def flush(self, now_s: Optional[float] = None) -> List[SessionDiagnosis]:
        """Close idle/open sessions and diagnose them."""
        return self._diagnose_closed(self.tracker.flush(now_s))
