"""Real-time QoE monitor: live weblogs in, diagnoses and alarms out.

Couples the :class:`~repro.realtime.tracker.OnlineSessionTracker` with a
trained :class:`~repro.core.framework.QoEFramework`: every time a video
session closes, it is diagnosed immediately, per-subscriber health is
updated, and alarm rules fire — the operator-side loop the paper's
conclusion sketches.

The loop is instrumented through :mod:`repro.obs`: open-session and
subscriber-health gauges, a diagnosis-latency histogram, and alarm
counters.  Subscriber callbacks (``on_diagnosis`` / ``on_alarm``) are
error-isolated — one raising callback cannot kill the monitor loop;
failures are logged and counted instead.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.capture.weblog import WeblogEntry
from repro.core.framework import QoEFramework, SessionDiagnosis
from repro.obs import get_logger, get_registry
from repro.online.early import EarlyPredictor, ProvisionalDiagnosis

from .tracker import OnlineSessionTracker

__all__ = ["SubscriberHealth", "Alarm", "RealTimeMonitor"]

_LOG = get_logger("realtime.monitor")

_REG = get_registry()
_DIAGNOSIS_LATENCY = _REG.histogram(
    "repro_realtime_diagnosis_latency_seconds",
    "Time from session close to finished diagnosis (per closed batch).",
    buckets=(
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    ),
)
_DIAGNOSES = _REG.counter(
    "repro_realtime_diagnoses_total",
    "Sessions diagnosed by the real-time monitor.",
)
_ALARMS = _REG.counter(
    "repro_realtime_alarms_total",
    "Operator alarms raised, by alarm rule.",
    labelnames=("rule",),
)
_CALLBACK_ERRORS = _REG.counter(
    "repro_realtime_alarms_callback_errors_total",
    "Subscriber callbacks that raised and were isolated.",
    labelnames=("callback",),
)
_SUBSCRIBERS = _REG.gauge(
    "repro_realtime_subscribers_tracked",
    "Subscribers with accumulated health state.",
)
_HEALTH = _REG.gauge(
    "repro_realtime_health_sessions",
    "SubscriberHealth rollups summed over all subscribers.",
    labelnames=("status",),
)


@dataclass
class SubscriberHealth:
    """Rolling per-subscriber QoE counters."""

    sessions: int = 0
    stalled: int = 0
    severe: int = 0
    low_definition: int = 0
    with_switches: int = 0

    @staticmethod
    def flags(diagnosis: SessionDiagnosis) -> Dict[str, bool]:
        """Which health buckets one diagnosis falls into."""
        return {
            "stalled": diagnosis.stall_class != "no stalls",
            "severe": diagnosis.stall_class == "severe stalls",
            "low_definition": diagnosis.representation_class == "LD",
            "with_switches": bool(diagnosis.has_quality_switches),
        }

    def update(self, diagnosis: SessionDiagnosis) -> None:
        flags = self.flags(diagnosis)
        self.sessions += 1
        self.stalled += flags["stalled"]
        self.severe += flags["severe"]
        self.low_definition += flags["low_definition"]
        self.with_switches += flags["with_switches"]

    @property
    def stall_ratio(self) -> float:
        return self.stalled / self.sessions if self.sessions else 0.0


@dataclass(frozen=True)
class Alarm:
    """An operator alarm raised by the monitor."""

    subscriber_id: str
    reason: str
    sessions_observed: int


class RealTimeMonitor:
    """Online monitoring loop.

    Parameters
    ----------
    framework:
        A fitted :class:`QoEFramework`.
    tracker:
        Session tracker (a default one is created if omitted).
    severe_alarm_after:
        Raise an alarm once a subscriber accumulates this many severe
        sessions.
    stall_ratio_alarm:
        Raise an alarm once a subscriber's stall ratio exceeds this
        (evaluated only after ``min_sessions_for_ratio`` sessions).
    on_diagnosis:
        Optional callback invoked with every fresh diagnosis.
    on_alarm:
        Optional callback invoked with every alarm as it is raised.
    early:
        Optional :class:`~repro.online.early.EarlyPredictor`: the
        tracker switches to streaming per-session feature state and the
        monitor emits provisional diagnoses on open sessions
        (collected in :attr:`provisional`), comparing them against the
        final diagnosis when each session closes.
    on_provisional:
        Optional callback invoked with every *emitted* provisional
        diagnosis (error-isolated like the other callbacks).

    All callbacks are error-isolated: an exception inside one is
    logged, counted in ``repro_realtime_alarms_callback_errors_total``
    and swallowed, so a broken subscriber cannot take the monitor down.
    """

    def __init__(
        self,
        framework: QoEFramework,
        tracker: Optional[OnlineSessionTracker] = None,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        early: Optional[EarlyPredictor] = None,
        on_provisional: Optional[
            Callable[[ProvisionalDiagnosis], None]
        ] = None,
    ) -> None:
        if severe_alarm_after < 1:
            raise ValueError("severe_alarm_after must be >= 1")
        if not 0.0 < stall_ratio_alarm <= 1.0:
            raise ValueError("stall_ratio_alarm must be in (0, 1]")
        self.framework = framework
        self.tracker = tracker or OnlineSessionTracker()
        self.severe_alarm_after = severe_alarm_after
        self.stall_ratio_alarm = stall_ratio_alarm
        self.min_sessions_for_ratio = min_sessions_for_ratio
        self.on_diagnosis = on_diagnosis
        self.on_alarm = on_alarm
        self.early = early
        self.on_provisional = on_provisional
        if early is not None:
            # Sessions opened before this point carry no streaming
            # state and are silently skipped by the early path.
            self.tracker.streaming = True

        self.health: Dict[str, SubscriberHealth] = defaultdict(SubscriberHealth)
        self.diagnoses: List[SessionDiagnosis] = []
        self.alarms: List[Alarm] = []
        self.provisional: List[ProvisionalDiagnosis] = []
        self.callback_errors = 0
        self._alarmed: set = set()
        self._drained = False

    # ------------------------------------------------------------------

    def _safe_callback(self, callback, argument, kind: str) -> None:
        if callback is None:
            return
        try:
            callback(argument)
        except Exception:
            self.callback_errors += 1
            _CALLBACK_ERRORS.labels(callback=kind).inc()
            _LOG.exception(
                "callback_failed",
                callback=kind,
                subscriber=getattr(argument, "subscriber_id", None)
                or getattr(argument, "session_id", None),
            )

    def _diagnose_closed(self, records) -> List[SessionDiagnosis]:
        if not records:
            return []
        started = time.perf_counter()
        diagnoses = self.framework.diagnose(records)
        for record, diagnosis in zip(records, diagnoses):
            subscriber = record.session_id.split("/", 1)[0]
            health = self.health[subscriber]
            health.update(diagnosis)
            self.diagnoses.append(diagnosis)
            flags = SubscriberHealth.flags(diagnosis)
            _HEALTH.labels(status="all").inc()
            for status, hit in flags.items():
                if hit:
                    _HEALTH.labels(status=status).inc()
            self._safe_callback(self.on_diagnosis, diagnosis, "diagnosis")
            self._check_alarms(subscriber, health)
        if self.early is not None:
            for record, diagnosis in zip(records, diagnoses):
                self.early.note_final(record, diagnosis)
        _DIAGNOSES.inc(len(diagnoses))
        _SUBSCRIBERS.set(len(self.health))
        _DIAGNOSIS_LATENCY.observe(time.perf_counter() - started)
        return diagnoses

    def _raise_alarm(self, alarm: Alarm, rule: str) -> None:
        self.alarms.append(alarm)
        self._alarmed.add(alarm.subscriber_id)
        _ALARMS.labels(rule=rule).inc()
        _LOG.warning(
            "alarm_raised",
            rule=rule,
            subscriber=alarm.subscriber_id,
            reason=alarm.reason,
            sessions=alarm.sessions_observed,
        )
        self._safe_callback(self.on_alarm, alarm, "alarm")

    def _check_alarms(self, subscriber: str, health: SubscriberHealth) -> None:
        if subscriber in self._alarmed:
            return
        if health.severe >= self.severe_alarm_after:
            self._raise_alarm(
                Alarm(
                    subscriber_id=subscriber,
                    reason=f"{health.severe} sessions with severe stalling",
                    sessions_observed=health.sessions,
                ),
                rule="severe",
            )
        elif (
            health.sessions >= self.min_sessions_for_ratio
            and health.stall_ratio >= self.stall_ratio_alarm
        ):
            self._raise_alarm(
                Alarm(
                    subscriber_id=subscriber,
                    reason=f"stall ratio {health.stall_ratio:.0%}",
                    sessions_observed=health.sessions,
                ),
                rule="stall_ratio",
            )

    # ------------------------------------------------------------------

    def diagnose_records(self, records) -> List[SessionDiagnosis]:
        """Diagnose already-closed session records through the monitor.

        Public entry point for the serving layer
        (:mod:`repro.serving`), which closes sessions through its own
        shard-local trackers and micro-batches the records before
        handing them here — health rollups, alarm rules and callbacks
        behave exactly as for :meth:`feed`.
        """
        return self._diagnose_closed(records)

    def final_alarm_sweep(self) -> List[Alarm]:
        """Run the alarm rules once more over every subscriber's health.

        Part of graceful shutdown (:meth:`drain`): alarm rules normally
        fire per diagnosis, so this sweep is a defensive final pass that
        guarantees shutdown never loses an alarm that the accumulated
        health state warrants.  Returns the alarms it raised (normally
        none — per-diagnosis checks already saw the same state).
        """
        before = len(self.alarms)
        for subscriber, health in list(self.health.items()):
            self._check_alarms(subscriber, health)
        return self.alarms[before:]

    def observe_entry(self, entry: WeblogEntry):
        """Track one (already-validated) entry, with the early path.

        Runs the tracker, then — when an early predictor is attached —
        gives it a look at the subscriber's still-open session so it
        can emit a provisional diagnosis.  Returns the closed records,
        like ``tracker.observe``; the serving shard calls this directly
        so both the serial and sharded paths share one early hook.
        """
        closed = self.tracker.observe(entry)
        if self.early is not None:
            session = self.tracker._open.get(entry.subscriber_id)
            if session is not None and session.stream is not None:
                # Follow model hot-reloads: the serving layer reassigns
                # self.framework per batch.
                self.early.framework = self.framework
                provisional = self.early.observe(
                    session.stream,
                    self.tracker.provisional_session_id(entry.subscriber_id),
                    entry.subscriber_id,
                )
                if provisional is not None:
                    self.provisional.append(provisional)
                    self._safe_callback(
                        self.on_provisional, provisional, "provisional"
                    )
        return closed

    def feed(self, entry: WeblogEntry) -> List[SessionDiagnosis]:
        """Feed one weblog entry; returns diagnoses of sessions it closed.

        Re-validates the entry
        (:meth:`~repro.capture.weblog.WeblogEntry.validate`) before it
        can touch tracker state, raising
        :class:`~repro.capture.weblog.MalformedRecordError` — the
        serial-path counterpart of the serving layer's dead-letter
        quarantine (a record can arrive through replay/deserialization
        paths that skipped ``__init__``).
        """
        if self._drained:
            raise RuntimeError("monitor is drained; create a new one")
        entry.validate()
        return self._diagnose_closed(self.observe_entry(entry))

    def feed_many(self, entries: Iterable[WeblogEntry]) -> List[SessionDiagnosis]:
        """Feed a batch of entries (must be time-ordered per subscriber)."""
        out: List[SessionDiagnosis] = []
        for entry in entries:
            out.extend(self.feed(entry))
        return out

    def flush(self, now_s: Optional[float] = None) -> List[SessionDiagnosis]:
        """Close idle/open sessions and diagnose them."""
        return self._diagnose_closed(self.tracker.flush(now_s))

    def drain(self) -> List[SessionDiagnosis]:
        """Graceful shutdown: flush everything, then a final alarm sweep.

        Closes and diagnoses every still-open session (idle or not),
        runs the alarm rules one last time over each subscriber's
        accumulated health, and marks the monitor drained — further
        :meth:`feed` calls raise.  Returns the final diagnoses.
        Idempotent: draining twice returns an empty list.
        """
        final = self._diagnose_closed(self.tracker.flush())
        self.final_alarm_sweep()
        self._drained = True
        return final
