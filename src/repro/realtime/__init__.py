"""Real-time monitoring: online session tracking and live QoE diagnosis."""

from .monitor import Alarm, RealTimeMonitor, SubscriberHealth
from .tracker import OnlineSessionTracker, OpenSession

__all__ = [
    "OnlineSessionTracker",
    "OpenSession",
    "RealTimeMonitor",
    "SubscriberHealth",
    "Alarm",
]
