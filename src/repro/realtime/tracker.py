"""Online session tracking over a live encrypted weblog stream.

The paper's deployment story (§8): "The trained models can be then
directly applied on the passively monitored traffic and report issues
in real time."  The offline reconstruction of §5.2 needs the whole
trace; this module is its *online* counterpart: weblog entries are fed
one at a time (in timestamp order per subscriber), open sessions are
maintained incrementally, and a :class:`~repro.datasets.schema.SessionRecord`
is emitted the moment a session closes (idle gap or new watch page).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.capture.reconstruction import is_youtube_host
from repro.capture.weblog import WeblogEntry
from repro.datasets.schema import SessionRecord
from repro.obs import get_registry
from repro.online.running import EXACT_CUTOVER
from repro.online.snapshot import StreamingSessionState

__all__ = ["OpenSession", "OnlineSessionTracker"]

_PAGE_HOSTS = ("m.youtube.com", "www.youtube.com")

_REG = get_registry()
_OPEN_SESSIONS = _REG.gauge(
    "repro_realtime_open_sessions",
    "Sessions currently open in the online tracker.",
)
_SESSIONS_CLOSED = _REG.counter(
    "repro_realtime_sessions_closed_total",
    "Sessions closed by the online tracker and emitted as records.",
)
_SESSIONS_DISCARDED = _REG.counter(
    "repro_realtime_sessions_discarded_total",
    "Sessions closed with too few media chunks to emit.",
)
_ENTRIES_TRACKED = _REG.counter(
    "repro_realtime_entries_tracked_total",
    "Service weblog entries fed into the online tracker.",
)


@dataclass
class OpenSession:
    """A session still accumulating entries."""

    subscriber_id: str
    media: List[WeblogEntry] = field(default_factory=list)
    signalling: List[WeblogEntry] = field(default_factory=list)
    #: Latest arrival time seen so far, maintained incrementally by
    #: :meth:`add` — recomputing it by scanning ``media + signalling``
    #: on every observe() made a live stream O(n^2) per session.
    last_activity_s: float = 0.0
    #: Latest *request timestamp* seen so far.  This — not the arrival
    #: watermark above — is the idle-gap timebase: entries are fed in
    #: request-timestamp order, so comparing the next entry's timestamp
    #: against the previous entry's arrival (timestamp + transaction)
    #: made long transactions produce negative gaps that kept sessions
    #: open past the configured idle gap.
    last_request_s: float = 0.0
    #: Incremental feature state for early prediction; None unless the
    #: owning tracker was built with ``streaming=True``.
    stream: Optional[StreamingSessionState] = None

    def add(self, entry: WeblogEntry) -> None:
        """Append one entry and update the activity watermark."""
        if entry.server_name.lower().endswith(".googlevideo.com"):
            self.media.append(entry)
            if self.stream is not None:
                self.stream.add_entry(entry)
        else:
            self.signalling.append(entry)
        if entry.arrival_s > self.last_activity_s:
            self.last_activity_s = entry.arrival_s
        if entry.timestamp_s > self.last_request_s:
            self.last_request_s = entry.timestamp_s

    def to_record(self, sequence: int) -> Optional[SessionRecord]:
        """Freeze into a SessionRecord (None if no media was seen)."""
        if not self.media:
            return None
        media = sorted(self.media, key=lambda e: e.arrival_s)
        return SessionRecord(
            session_id=f"{self.subscriber_id}/online-{sequence}",
            encrypted=True,
            timestamps=np.array([e.arrival_s for e in media]),
            sizes=np.array([float(e.object_bytes) for e in media]),
            transactions=np.array([e.transaction_s for e in media]),
            rtt_min=np.array([e.rtt_min_ms for e in media]),
            rtt_avg=np.array([e.rtt_avg_ms for e in media]),
            rtt_max=np.array([e.rtt_max_ms for e in media]),
            bdp=np.array([e.bdp_bytes for e in media]),
            bif_avg=np.array([e.bif_avg_bytes for e in media]),
            bif_max=np.array([e.bif_max_bytes for e in media]),
            loss_pct=np.array([e.loss_pct for e in media]),
            retx_pct=np.array([e.retx_pct for e in media]),
        )


class OnlineSessionTracker:
    """Incremental version of the §5.2 reconstruction heuristic.

    Feed entries with :meth:`observe`; closed sessions are returned as
    records.  Call :meth:`flush` (e.g. at end of capture, or on a
    timer) to close sessions that have been idle longer than the gap.

    The idle gap is measured on the *request-timestamp* timebase
    (``entry.timestamp_s``), which is the order entries are fed in: a
    session closes when the next request starts more than
    ``idle_gap_s`` after the previous request started.  (The offline
    :class:`~repro.capture.reconstruction.SessionReconstructor` keeps
    its historical mixed timestamp/arrival comparison; online the
    mixed timebase let one long transaction push the watermark past
    the next request and hold sessions open indefinitely.)

    Parameters
    ----------
    idle_gap_s:
        Silence (between request timestamps) that closes a
        subscriber's current session.
    min_media_chunks:
        Sessions with fewer media entries are discarded on close.
    streaming:
        Maintain a :class:`~repro.online.snapshot.StreamingSessionState`
        per open session (updated in O(1) per entry) for early
        prediction.
    exact_cutover:
        Chunk-buffer size for those streaming states (see
        :mod:`repro.online.running`).
    """

    def __init__(
        self,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        streaming: bool = False,
        exact_cutover: int = EXACT_CUTOVER,
    ):
        if idle_gap_s <= 0:
            raise ValueError("idle gap must be positive")
        if min_media_chunks < 1:
            raise ValueError("min_media_chunks must be >= 1")
        self.idle_gap_s = idle_gap_s
        self.min_media_chunks = min_media_chunks
        self.streaming = streaming
        self.exact_cutover = exact_cutover
        self._open: Dict[str, OpenSession] = {}
        #: Emitted-session count per subscriber.  Session ids are built
        #: from *this* counter (not a tracker-global one) so an id is a
        #: pure function of the subscriber's own entry stream: a trace
        #: partitioned across N shard-local trackers produces exactly
        #: the ids one serial tracker would (see ``repro.serving``).
        self._sequence: Dict[str, int] = {}

    @property
    def open_sessions(self) -> int:
        """Number of subscribers with a session currently open."""
        return len(self._open)

    def _close(self, subscriber_id: str) -> Optional[SessionRecord]:
        session = self._open.pop(subscriber_id, None)
        _OPEN_SESSIONS.set(len(self._open))
        if session is None:
            return None
        if len(session.media) < self.min_media_chunks:
            _SESSIONS_DISCARDED.inc()
            return None
        sequence = self._sequence.get(subscriber_id, 0) + 1
        self._sequence[subscriber_id] = sequence
        _SESSIONS_CLOSED.inc()
        return session.to_record(sequence)

    def observe(self, entry: WeblogEntry) -> List[SessionRecord]:
        """Feed one weblog entry; returns any sessions this closes."""
        if not is_youtube_host(entry.server_name):
            return []
        _ENTRIES_TRACKED.inc()
        closed: List[SessionRecord] = []
        subscriber = entry.subscriber_id
        current = self._open.get(subscriber)

        if current is not None:
            gap_break = (
                entry.timestamp_s - current.last_request_s > self.idle_gap_s
            )
            page_break = (
                entry.server_name.lower() in _PAGE_HOSTS and current.media
            )
            if gap_break or page_break:
                record = self._close(subscriber)
                if record is not None:
                    closed.append(record)
                current = None

        if current is None:
            current = OpenSession(
                subscriber_id=subscriber,
                stream=(
                    StreamingSessionState(exact_cutover=self.exact_cutover)
                    if self.streaming
                    else None
                ),
            )
            self._open[subscriber] = current
            _OPEN_SESSIONS.set(len(self._open))

        current.add(entry)
        return closed

    def provisional_session_id(self, subscriber_id: str) -> str:
        """The id the subscriber's open session will get if emitted.

        Discarded sessions (too few media chunks) never consume a
        sequence number, so a discarded session and its successor can
        share this provisional id; the early predictor guards against
        the collision with the closed record's chunk count.
        """
        return (
            f"{subscriber_id}/online-"
            f"{self._sequence.get(subscriber_id, 0) + 1}"
        )

    def flush(self, now_s: Optional[float] = None) -> List[SessionRecord]:
        """Close idle (or, with ``now_s=None``, all) open sessions.

        ``now_s`` is compared on the request-timestamp timebase, like
        the in-stream idle gap.
        """
        closed: List[SessionRecord] = []
        for subscriber in list(self._open):
            session = self._open[subscriber]
            if now_s is None or now_s - session.last_request_s > self.idle_gap_s:
                record = self._close(subscriber)
                if record is not None:
                    closed.append(record)
        return closed
