"""Cellular network substrate: condition profiles, mobility regimes,
time-varying paths and the round-based TCP transfer model."""

from .conditions import PROFILES, ConditionProfile, LinkState
from .diurnal import DEFAULT_HOURLY_LOAD, DiurnalLoadModel
from .mobility import COMMUTER_USER, STATIC_USER, MobilityModel, Place
from .path import NetworkPath, Outage
from .tcp import MSS_BYTES, TcpConnection, TransferResult

__all__ = [
    "ConditionProfile",
    "LinkState",
    "PROFILES",
    "DiurnalLoadModel",
    "DEFAULT_HOURLY_LOAD",
    "MobilityModel",
    "Place",
    "STATIC_USER",
    "COMMUTER_USER",
    "NetworkPath",
    "Outage",
    "TcpConnection",
    "TransferResult",
    "MSS_BYTES",
]
