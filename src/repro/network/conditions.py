"""Network condition profiles for the simulated cellular access network.

The paper's corpus comes from a production 3G/4G network where
conditions range from stable home/office WiFi-like cells to heavily
degraded conditions while commuting.  A :class:`ConditionProfile`
describes the *distribution* of link parameters in one such regime;
sampling it yields a concrete :class:`LinkState`.

Bandwidth is in kbit/s, RTT in milliseconds, loss as a probability per
packet.  These are the three drivers of every transport-layer metric in
Table 1 (BDP, BIF, retransmissions, RTT statistics) and, through the
player, of every QoE impairment the paper detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["LinkState", "ConditionProfile", "PROFILES"]


@dataclass(frozen=True)
class LinkState:
    """Instantaneous bottleneck-link state."""

    bandwidth_kbps: float
    rtt_ms: float
    loss_rate: float

    def __post_init__(self) -> None:
        if self.bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_ms <= 0:
            raise ValueError("RTT must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product in bytes (capacity × RTT)."""
        return self.bandwidth_kbps * 1000.0 / 8.0 * (self.rtt_ms / 1000.0)


@dataclass(frozen=True)
class ConditionProfile:
    """Log-normal-ish distribution of link states within one regime.

    ``bandwidth_kbps`` / ``rtt_ms`` give the median; the ``*_sigma``
    values are the log-space standard deviations of the multiplicative
    variation around it.  ``loss_rate`` is the mean packet-loss
    probability, jittered by ``loss_sigma`` (truncated at 0).
    ``volatility`` in [0, 1] controls how fast the AR(1) fading process
    wanders inside a session (0 = frozen, 1 = memoryless).
    """

    name: str
    bandwidth_kbps: float
    bandwidth_sigma: float
    rtt_ms: float
    rtt_sigma: float
    loss_rate: float
    loss_sigma: float
    volatility: float

    def sample(self, rng: np.random.Generator) -> LinkState:
        """Draw one concrete link state from the profile."""
        bw = self.bandwidth_kbps * float(
            np.exp(rng.normal(0.0, self.bandwidth_sigma))
        )
        rtt = self.rtt_ms * float(np.exp(rng.normal(0.0, self.rtt_sigma)))
        loss = max(0.0, float(rng.normal(self.loss_rate, self.loss_sigma)))
        return LinkState(
            bandwidth_kbps=max(16.0, bw),
            rtt_ms=max(5.0, rtt),
            loss_rate=min(0.5, loss),
        )


#: Named regimes used by the corpus generators and the mobility model.
#: The medians are loosely calibrated to 2016-era European cellular
#: networks: a good static 3G/HSPA+ cell sustains a few Mbit/s, a
#: congested or moving cell drops well below video bitrates.
PROFILES: Dict[str, ConditionProfile] = {
    "excellent": ConditionProfile(
        name="excellent",
        bandwidth_kbps=8000.0,
        bandwidth_sigma=0.25,
        rtt_ms=55.0,
        rtt_sigma=0.40,
        loss_rate=0.002,
        loss_sigma=0.001,
        volatility=0.05,
    ),
    "good": ConditionProfile(
        name="good",
        bandwidth_kbps=4000.0,
        bandwidth_sigma=0.35,
        rtt_ms=65.0,
        rtt_sigma=0.45,
        loss_rate=0.003,
        loss_sigma=0.002,
        volatility=0.1,
    ),
    "fair": ConditionProfile(
        name="fair",
        bandwidth_kbps=1600.0,
        bandwidth_sigma=0.45,
        rtt_ms=80.0,
        rtt_sigma=0.50,
        loss_rate=0.005,
        loss_sigma=0.003,
        volatility=0.2,
    ),
    "poor": ConditionProfile(
        name="poor",
        bandwidth_kbps=350.0,
        bandwidth_sigma=0.60,
        rtt_ms=100.0,
        rtt_sigma=0.55,
        loss_rate=0.008,
        loss_sigma=0.004,
        volatility=0.35,
    ),
    "bad": ConditionProfile(
        name="bad",
        bandwidth_kbps=300.0,
        bandwidth_sigma=0.6,
        rtt_ms=140.0,
        rtt_sigma=0.60,
        loss_rate=0.015,
        loss_sigma=0.006,
        volatility=0.4,
    ),
}
