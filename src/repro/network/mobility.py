"""Regime-switching mobility model.

§5.2 of the paper collects the encrypted corpus from a phone carried by
a commuting user: "a large part of the encrypted videos was downloaded
while the user was commuting where network conditions can significantly
deteriorate", while "the majority of [healthy] sessions are generated
when the user is static either at the office or at home, where the
network conditions have a constant performance".

This module models a user's day as a Markov chain over *places*
(home, office, commute, outdoors), each mapped to a condition profile.
Sampling the chain yields the regime active when a video session
starts; within-session fading is handled by :mod:`repro.network.path`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .conditions import PROFILES, ConditionProfile

__all__ = ["Place", "MobilityModel", "STATIC_USER", "COMMUTER_USER"]


@dataclass(frozen=True)
class Place:
    """A location regime: a name, a condition profile and a stability flag."""

    name: str
    profile: ConditionProfile
    static: bool


def _places() -> Dict[str, Place]:
    return {
        "home": Place("home", PROFILES["good"], static=True),
        "office": Place("office", PROFILES["excellent"], static=True),
        "commute": Place("commute", PROFILES["poor"], static=False),
        "outdoors": Place("outdoors", PROFILES["fair"], static=False),
    }


@dataclass
class MobilityModel:
    """Markov chain over places with a stationary initial distribution.

    Parameters
    ----------
    transition:
        Row-stochastic matrix over ``order``; entry [i][j] is the
        probability of moving from place i to place j between two
        consecutive video sessions.
    order:
        Place names indexing the matrix rows/columns.
    """

    transition: Sequence[Sequence[float]]
    order: Sequence[str] = ("home", "office", "commute", "outdoors")
    places: Dict[str, Place] = field(default_factory=_places)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.transition, dtype=float)
        n = len(self.order)
        if matrix.shape != (n, n):
            raise ValueError("transition matrix shape mismatch")
        if np.any(matrix < 0) or not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("transition matrix must be row-stochastic")
        self._matrix = matrix

    def stationary_distribution(self) -> np.ndarray:
        """Left eigenvector of the transition matrix with eigenvalue 1."""
        values, vectors = np.linalg.eig(self._matrix.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()

    def walk_from_uniforms(self, uniforms: np.ndarray) -> List[Place]:
        """Deterministic walk driven by pre-drawn uniforms.

        One uniform per step, inverted against the cumulative stationary
        law (first step) / transition rows (later steps).  The corpus
        engines draw the uniforms in one batch and share this inversion,
        which is what keeps their walks identical.
        """
        n_steps = len(uniforms)
        if n_steps == 0:
            return []
        pi = self.stationary_distribution()
        cum_init = np.cumsum(pi)
        cum_rows = np.cumsum(self._matrix, axis=1)
        last = len(self.order) - 1
        state = min(int(np.searchsorted(cum_init, uniforms[0], side="right")), last)
        out = [self.places[self.order[state]]]
        for k in range(1, n_steps):
            state = min(
                int(np.searchsorted(cum_rows[state], uniforms[k], side="right")),
                last,
            )
            out.append(self.places[self.order[state]])
        return out

    def walk(self, n_steps: int, rng: np.random.Generator) -> List[Place]:
        """Sample a sequence of places, starting from the stationary law."""
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        if n_steps == 0:
            return []
        return self.walk_from_uniforms(rng.random(n_steps))


#: A mostly-static user: generates the cleartext corpus's diversity
#: (most sessions on stable links, a tail of mobile/degraded ones).
STATIC_USER = MobilityModel(
    transition=[
        # home   office commute outdoors
        [0.68, 0.06, 0.17, 0.09],   # home
        [0.06, 0.68, 0.17, 0.09],   # office
        [0.30, 0.28, 0.28, 0.14],   # commute
        [0.25, 0.20, 0.25, 0.30],   # outdoors
    ]
)

#: The §5.2 instrumented user, "motivated to launch the application when
#: moving": commute/outdoors states dominate.
COMMUTER_USER = MobilityModel(
    transition=[
        [0.55, 0.05, 0.30, 0.10],   # home
        [0.05, 0.55, 0.30, 0.10],   # office
        [0.25, 0.25, 0.35, 0.15],   # commute
        [0.20, 0.15, 0.30, 0.35],   # outdoors
    ]
)
