"""Time-varying bottleneck path.

A :class:`NetworkPath` realises one video session's network environment:
a base :class:`LinkState` drawn from a :class:`ConditionProfile`, with
AR(1) log-space fading around it (faster-wandering for volatile
regimes) and optional deterministic *outages* — deep bandwidth dips used
by experiments that force stalls at known times (Figure 1) or quality
switches (Figure 3).

The trace is precomputed at a fixed time step so that lookups during
the TCP simulation are O(1) and deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .conditions import PROFILES, ConditionProfile, LinkState

__all__ = ["Outage", "NetworkPath"]


@dataclass(frozen=True)
class Outage:
    """A forced bandwidth dip on [start_s, end_s) scaling capacity by factor."""

    start_s: float
    end_s: float
    factor: float = 0.08

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("outage must have positive duration")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


class NetworkPath:
    """Precomputed per-step link-state trace for one session.

    Parameters
    ----------
    profile:
        Condition regime, by object or by name from
        :data:`repro.network.conditions.PROFILES`.
    duration_s:
        Length of the precomputed trace; lookups beyond it clamp to the
        last step (sessions occasionally overrun their nominal length
        when the network is slow).
    rng:
        Seeded generator; the path is fully deterministic given it.
    time_step_s:
        Trace resolution.
    outages:
        Deterministic bandwidth dips applied on top of the fading.
    """

    def __init__(
        self,
        profile,
        duration_s: float,
        rng: np.random.Generator,
        time_step_s: float = 1.0,
        outages: Optional[Sequence[Outage]] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if time_step_s <= 0:
            raise ValueError("time step must be positive")
        self.profile: ConditionProfile = profile
        self.duration_s = float(duration_s)
        self.time_step_s = float(time_step_s)
        self.outages: List[Outage] = list(outages or [])

        base = profile.sample(rng)
        self.base_state = base
        n = max(2, int(np.ceil(duration_s / time_step_s)) + 1)

        # AR(1) fading in log space around the base values.  rho close
        # to 1 for calm regimes, lower for volatile ones.
        rho = float(np.clip(1.0 - profile.volatility, 0.5, 0.995))
        sigma_bw = 0.5 * profile.bandwidth_sigma * np.sqrt(1.0 - rho**2)
        sigma_rtt = 0.5 * profile.rtt_sigma * np.sqrt(1.0 - rho**2)
        eps_bw = rng.normal(0.0, 1.0, size=n)
        eps_rtt = rng.normal(0.0, 1.0, size=n)
        log_bw = np.empty(n)
        log_rtt = np.empty(n)
        log_bw[0] = 0.0
        log_rtt[0] = 0.0
        for t in range(1, n):
            log_bw[t] = rho * log_bw[t - 1] + sigma_bw * eps_bw[t]
            log_rtt[t] = rho * log_rtt[t - 1] + sigma_rtt * eps_rtt[t]

        bw = base.bandwidth_kbps * np.exp(log_bw)
        rtt = base.rtt_ms * np.exp(log_rtt)

        # Loss grows when bandwidth fades below the base level (deep
        # fades mean a congested or weak cell).
        fade = np.clip(1.0 - bw / base.bandwidth_kbps, 0.0, 1.0)
        loss = base.loss_rate * (1.0 + 4.0 * fade)
        # Random radio-layer loss bursts, uncorrelated with the fading
        # (interference, handovers that do not dent throughput).
        burst_mask = rng.random(n) < 0.012
        loss = loss + burst_mask * rng.uniform(0.01, 0.08, size=n)

        # Apply forced outages: capacity dip, RTT inflation, loss burst.
        times = np.arange(n) * time_step_s
        for outage in self.outages:
            mask = (times >= outage.start_s) & (times < outage.end_s)
            bw[mask] *= outage.factor
            rtt[mask] *= 1.0 + (1.0 - outage.factor)
            loss[mask] = np.minimum(0.5, loss[mask] * 3.0 + 0.01)

        self._bw = np.maximum(16.0, bw)
        self._rtt = np.maximum(5.0, rtt)
        self._loss = np.clip(loss, 0.0, 0.5)

    def _index(self, t: float) -> int:
        idx = int(t / self.time_step_s)
        return min(max(idx, 0), self._bw.size - 1)

    def state_at(self, t: float) -> LinkState:
        """Link state active at absolute session time ``t`` seconds."""
        i = self._index(t)
        return LinkState(
            bandwidth_kbps=float(self._bw[i]),
            rtt_ms=float(self._rtt[i]),
            loss_rate=float(self._loss[i]),
        )

    def bandwidth_trace(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, bandwidth_kbps) arrays of the whole precomputed trace."""
        times = np.arange(self._bw.size) * self.time_step_s
        return times, self._bw.copy()

    def mean_bandwidth_kbps(self) -> float:
        return float(np.mean(self._bw))
