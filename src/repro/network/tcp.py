"""Round-based TCP transfer model.

Every chunk download in the simulator goes through this model, which
produces exactly the transport-layer annotations the operator's proxy
attaches to each weblog (Table 1): RTT min/avg/max, bandwidth-delay
product, average/maximum bytes-in-flight, packet loss and
retransmission percentages, plus the transfer duration that determines
chunk arrival times.

The model is deliberately round-granular (one iteration per RTT) rather
than packet-granular: it keeps full-corpus generation fast while still
reproducing the behaviours the paper's features rely on — slow start,
AIMD backoff under loss, bandwidth-capped rounds, queueing-inflated
RTTs when the window overshoots the BDP, and slow-start restart after
idle periods (the OFF phases of pacing).

Randomness discipline
---------------------
Each simulated round consumes exactly four pre-drawn variates — an RTT
jitter normal, a spike roll, a spike magnitude, and a loss uniform —
pulled from fixed-size blocks (:class:`RoundDraws`).  Loss counts come
from :func:`binomial_from_uniform`, an explicit inverse-CDF walk over a
single uniform.  Both choices make the per-round RNG consumption
independent of which branches fire, so the vectorized corpus engine
(``repro.datasets.genx``) can replay the identical stream lane-by-lane
and reproduce this model's output bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .path import NetworkPath

__all__ = [
    "TransferResult",
    "TcpConnection",
    "RoundDraws",
    "binomial_from_uniform",
    "MSS_BYTES",
    "DRAW_BLOCK",
    "INITIAL_CWND",
    "IDLE_RESTART_RTTS",
    "RTT_JITTER_SIGMA",
    "SPIKE_PROB",
    "SPIKE_MIN",
    "SPIKE_SPAN",
]

#: Ethernet-ish maximum segment size used to convert bytes to packets.
MSS_BYTES: int = 1460

#: Initial congestion window (RFC 6928 IW10).
INITIAL_CWND: int = 10

#: Idle time after which the window collapses back to the initial one
#: (slow-start restart, RFC 2581 §4.1), in units of the current RTT.
IDLE_RESTART_RTTS: float = 4.0

#: Std-dev of the per-round multiplicative RTT jitter.
RTT_JITTER_SIGMA: float = 0.10

#: Probability of a cross-traffic bufferbloat RTT spike per round, and
#: the spike multiplier range ``SPIKE_MIN + u * SPIKE_SPAN``.
SPIKE_PROB: float = 0.05
SPIKE_MIN: float = 2.0
SPIKE_SPAN: float = 3.0

#: Number of rounds worth of variates drawn per RNG refill.
DRAW_BLOCK: int = 32


def binomial_from_uniform(u: float, n: int, p: float) -> int:
    """Invert the Binomial(n, p) CDF at ``u`` by sequential search.

    Replaces ``rng.binomial`` so a loss count costs exactly one uniform
    from the round block regardless of outcome.  The op order inside
    the loop (``tmp = (n - k) / (k + 1); tmp = tmp * r; pmf = pmf *
    tmp``) is fixed; the vectorized engine applies the same ops
    elementwise, so scalar and lane-parallel walks agree bitwise.
    """
    q = 1.0 - p
    r = p / q
    pmf = q ** n
    cdf = pmf
    k = 0
    while u > cdf and k < n:
        tmp = (n - k) / (k + 1)
        tmp = tmp * r
        pmf = pmf * tmp
        k += 1
        cdf = cdf + pmf
    return k


class RoundDraws:
    """Block-drawn per-round variates for one connection.

    Refills pull ``DRAW_BLOCK`` standard normals, then three uniform
    blocks (spike roll, spike magnitude, loss), always in that order.
    ``next_round`` hands out one column per round; consumption per
    round is constant, which is what lets the vectorized engine mirror
    the stream exactly.
    """

    __slots__ = ("rng", "_z", "_spike", "_mult", "_loss", "_cursor")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._cursor = DRAW_BLOCK

    def _refill(self) -> None:
        rng = self.rng
        # tolist() hands back Python floats: identical bits, faster
        # scalar arithmetic than numpy scalars in the round loop.
        self._z = rng.standard_normal(DRAW_BLOCK).tolist()
        self._spike = rng.random(DRAW_BLOCK).tolist()
        self._mult = rng.random(DRAW_BLOCK).tolist()
        self._loss = rng.random(DRAW_BLOCK).tolist()
        self._cursor = 0

    def next_round(self):
        c = self._cursor
        if c >= DRAW_BLOCK:
            self._refill()
            c = 0
        self._cursor = c + 1
        return self._z[c], self._spike[c], self._mult[c], self._loss[c]


@dataclass(slots=True)
class TransferResult:
    """Transport-layer summary of one chunk download."""

    bytes: int
    start_s: float
    duration_s: float
    rtt_min_ms: float
    rtt_avg_ms: float
    rtt_max_ms: float
    loss_pct: float
    retx_pct: float
    bif_avg_bytes: float
    bif_max_bytes: float
    bdp_bytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def throughput_kbps(self) -> float:
        """Achieved goodput of the transfer in kbit/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes * 8.0 / 1000.0 / self.duration_s


class TcpConnection:
    """A persistent TCP connection over a :class:`NetworkPath`.

    The congestion window survives between downloads on the same
    connection (HTTP keep-alive), collapsing back to the initial window
    after long idle gaps — which is why, in the simulated corpus just
    as in the paper's Figure 1, the first chunks after a stall or an
    OFF period download with different dynamics than steady-state ones.
    """

    def __init__(self, path: NetworkPath, rng: np.random.Generator) -> None:
        self.path = path
        self.rng = rng
        self._cwnd = float(INITIAL_CWND)
        self._ssthresh = 64.0
        self._last_activity_s: float = None
        # Bottleneck buffer depth varies per cell: some queues bloat
        # RTTs badly under overshoot, others drop instead of queueing.
        self._bloat_factor = float(rng.uniform(0.05, 0.5))
        self._draws = RoundDraws(rng)

    def _maybe_idle_restart(self, start_s: float, rtt_s: float) -> None:
        if self._last_activity_s is None:
            return
        idle = start_s - self._last_activity_s
        if idle > IDLE_RESTART_RTTS * rtt_s:
            self._cwnd = float(INITIAL_CWND)

    def download(self, size_bytes: int, start_s: float) -> TransferResult:
        """Transfer ``size_bytes`` starting at session time ``start_s``."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if start_s < 0:
            raise ValueError("start time must be >= 0")

        state = self.path.state_at(start_s)
        self._maybe_idle_restart(start_s, state.rtt_ms / 1000.0)

        remaining = int(np.ceil(size_bytes / MSS_BYTES))
        now = start_s
        sent = 0
        lost = 0
        n_rounds = 0
        rtt_min = float("inf")
        rtt_max = float("-inf")
        rtt_sum = 0.0
        bif_sum = 0.0
        bif_max = float("-inf")
        bdp_sum = 0.0
        next_round = self._draws.next_round

        while remaining > 0:
            state = self.path.state_at(now)
            in_flight = int(min(self._cwnd, remaining))
            in_flight = max(1, in_flight)
            bif_bytes = in_flight * MSS_BYTES

            z, u_spike, u_mult, u_loss = next_round()

            # Queueing delay grows once the window overshoots the BDP.
            bdp = state.bdp_bytes
            overshoot = max(0.0, bif_bytes / max(bdp, 1.0) - 1.0)
            jitter = RTT_JITTER_SIGMA * z
            rtt_ms = state.rtt_ms * max(
                0.5, 1.0 + self._bloat_factor * min(overshoot, 3.0) + jitter
            )
            # Cross-traffic bufferbloat: occasional large RTT spikes hit
            # every connection regardless of the session's own health.
            if u_spike < SPIKE_PROB:
                rtt_ms *= SPIKE_MIN + SPIKE_SPAN * u_mult
            rtt_s = rtt_ms / 1000.0

            # The round cannot finish faster than the capacity allows.
            capacity_bps = state.bandwidth_kbps * 1000.0 / 8.0
            serialisation_s = bif_bytes / capacity_bps
            round_s = max(rtt_s, serialisation_s)

            losses = binomial_from_uniform(u_loss, in_flight, state.loss_rate)
            sent += in_flight
            lost += losses
            delivered = in_flight - losses
            remaining -= delivered

            if losses > 0:
                # Fast-recovery-style multiplicative decrease.
                self._ssthresh = max(2.0, self._cwnd / 2.0)
                self._cwnd = self._ssthresh
                # Lost segments are retransmitted in the next round(s);
                # the retransmission itself costs (at least) one extra RTT
                # which we charge to this round.
                round_s += rtt_s
            elif self._cwnd < self._ssthresh:
                self._cwnd = min(self._cwnd * 2.0, self._ssthresh)
            else:
                self._cwnd += 1.0

            n_rounds += 1
            if rtt_ms < rtt_min:
                rtt_min = rtt_ms
            if rtt_ms > rtt_max:
                rtt_max = rtt_ms
            rtt_sum += rtt_ms
            fbif = float(bif_bytes)
            bif_sum += fbif
            if fbif > bif_max:
                bif_max = fbif
            bdp_sum += bdp
            now += round_s

        self._last_activity_s = now
        duration = now - start_s
        loss_pct = 100.0 * lost / sent if sent else 0.0
        return TransferResult(
            bytes=size_bytes,
            start_s=start_s,
            duration_s=float(duration),
            rtt_min_ms=float(rtt_min),
            rtt_avg_ms=float(rtt_sum / n_rounds),
            rtt_max_ms=float(rtt_max),
            loss_pct=float(loss_pct),
            # In this model every loss is repaired by exactly one fast
            # retransmission; timeout-driven duplicates are ignored.
            retx_pct=float(loss_pct),
            bif_avg_bytes=float(bif_sum / n_rounds),
            bif_max_bytes=float(bif_max),
            bdp_bytes=float(bdp_sum / n_rounds),
        )
