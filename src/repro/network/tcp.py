"""Round-based TCP transfer model.

Every chunk download in the simulator goes through this model, which
produces exactly the transport-layer annotations the operator's proxy
attaches to each weblog (Table 1): RTT min/avg/max, bandwidth-delay
product, average/maximum bytes-in-flight, packet loss and
retransmission percentages, plus the transfer duration that determines
chunk arrival times.

The model is deliberately round-granular (one iteration per RTT) rather
than packet-granular: it keeps full-corpus generation fast while still
reproducing the behaviours the paper's features rely on — slow start,
AIMD backoff under loss, bandwidth-capped rounds, queueing-inflated
RTTs when the window overshoots the BDP, and slow-start restart after
idle periods (the OFF phases of pacing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .path import NetworkPath

__all__ = ["TransferResult", "TcpConnection", "MSS_BYTES"]

#: Ethernet-ish maximum segment size used to convert bytes to packets.
MSS_BYTES: int = 1460

#: Initial congestion window (RFC 6928 IW10).
_INITIAL_CWND: int = 10

#: Idle time after which the window collapses back to the initial one
#: (slow-start restart, RFC 2581 §4.1), in units of the current RTT.
_IDLE_RESTART_RTTS: float = 4.0


@dataclass
class TransferResult:
    """Transport-layer summary of one chunk download."""

    bytes: int
    start_s: float
    duration_s: float
    rtt_min_ms: float
    rtt_avg_ms: float
    rtt_max_ms: float
    loss_pct: float
    retx_pct: float
    bif_avg_bytes: float
    bif_max_bytes: float
    bdp_bytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def throughput_kbps(self) -> float:
        """Achieved goodput of the transfer in kbit/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes * 8.0 / 1000.0 / self.duration_s


class TcpConnection:
    """A persistent TCP connection over a :class:`NetworkPath`.

    The congestion window survives between downloads on the same
    connection (HTTP keep-alive), collapsing back to the initial window
    after long idle gaps — which is why, in the simulated corpus just
    as in the paper's Figure 1, the first chunks after a stall or an
    OFF period download with different dynamics than steady-state ones.
    """

    def __init__(self, path: NetworkPath, rng: np.random.Generator) -> None:
        self.path = path
        self.rng = rng
        self._cwnd = float(_INITIAL_CWND)
        self._ssthresh = 64.0
        self._last_activity_s: float = None
        # Bottleneck buffer depth varies per cell: some queues bloat
        # RTTs badly under overshoot, others drop instead of queueing.
        self._bloat_factor = float(rng.uniform(0.05, 0.5))

    def _maybe_idle_restart(self, start_s: float, rtt_s: float) -> None:
        if self._last_activity_s is None:
            return
        idle = start_s - self._last_activity_s
        if idle > _IDLE_RESTART_RTTS * rtt_s:
            self._cwnd = float(_INITIAL_CWND)

    def download(self, size_bytes: int, start_s: float) -> TransferResult:
        """Transfer ``size_bytes`` starting at session time ``start_s``."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if start_s < 0:
            raise ValueError("start time must be >= 0")

        state = self.path.state_at(start_s)
        self._maybe_idle_restart(start_s, state.rtt_ms / 1000.0)

        remaining = int(np.ceil(size_bytes / MSS_BYTES))
        total_to_send = remaining
        now = start_s
        sent = 0
        lost = 0
        rtt_samples: List[float] = []
        bif_samples: List[float] = []
        bdp_samples: List[float] = []

        while remaining > 0:
            state = self.path.state_at(now)
            in_flight = int(min(self._cwnd, remaining))
            in_flight = max(1, in_flight)
            bif_bytes = in_flight * MSS_BYTES

            # Queueing delay grows once the window overshoots the BDP.
            bdp = state.bdp_bytes
            overshoot = max(0.0, bif_bytes / max(bdp, 1.0) - 1.0)
            jitter = float(self.rng.normal(0.0, 0.10))
            rtt_ms = state.rtt_ms * max(
                0.5, 1.0 + self._bloat_factor * min(overshoot, 3.0) + jitter
            )
            # Cross-traffic bufferbloat: occasional large RTT spikes hit
            # every connection regardless of the session's own health.
            if self.rng.random() < 0.05:
                rtt_ms *= float(self.rng.uniform(2.0, 5.0))
            rtt_s = rtt_ms / 1000.0

            # The round cannot finish faster than the capacity allows.
            capacity_bps = state.bandwidth_kbps * 1000.0 / 8.0
            serialisation_s = bif_bytes / capacity_bps
            round_s = max(rtt_s, serialisation_s)

            losses = int(self.rng.binomial(in_flight, state.loss_rate))
            sent += in_flight
            lost += losses
            delivered = in_flight - losses
            remaining -= delivered

            if losses > 0:
                # Fast-recovery-style multiplicative decrease.
                self._ssthresh = max(2.0, self._cwnd / 2.0)
                self._cwnd = self._ssthresh
                # Lost segments are retransmitted in the next round(s);
                # the retransmission itself costs (at least) one extra RTT
                # which we charge to this round.
                round_s += rtt_s
            elif self._cwnd < self._ssthresh:
                self._cwnd = min(self._cwnd * 2.0, self._ssthresh)
            else:
                self._cwnd += 1.0

            rtt_samples.append(rtt_ms)
            bif_samples.append(float(bif_bytes))
            bdp_samples.append(float(bdp))
            now += round_s

        self._last_activity_s = now
        duration = now - start_s
        rtt_arr = np.asarray(rtt_samples)
        bif_arr = np.asarray(bif_samples)
        loss_pct = 100.0 * lost / sent if sent else 0.0
        return TransferResult(
            bytes=size_bytes,
            start_s=start_s,
            duration_s=float(duration),
            rtt_min_ms=float(rtt_arr.min()),
            rtt_avg_ms=float(rtt_arr.mean()),
            rtt_max_ms=float(rtt_arr.max()),
            loss_pct=float(loss_pct),
            # In this model every loss is repaired by exactly one fast
            # retransmission; timeout-driven duplicates are ignored.
            retx_pct=float(loss_pct),
            bif_avg_bytes=float(bif_arr.mean()),
            bif_max_bytes=float(bif_arr.max()),
            bdp_bytes=float(np.mean(bdp_samples)),
        )
