"""Diurnal load model: time-of-day effects on cell capacity.

The paper's corpus spans 45 days of production traffic, so it bakes in
the daily rhythm of a cellular network — evening busy hours congest
cells and degrade QoE, night hours leave them idle.  This model scales
a condition profile's capacity by the hour of day, letting corpora (and
the time-of-day analyses operators actually run) reflect that rhythm.

The shape is the classic two-peak weekday curve: a mild midday bump, a
deep evening busy hour, and a quiet night.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple


from .conditions import ConditionProfile

__all__ = ["DiurnalLoadModel", "DEFAULT_HOURLY_LOAD"]

#: Relative cell load per hour of day (0-23), 1.0 = busy-hour peak.
DEFAULT_HOURLY_LOAD: Tuple[float, ...] = (
    0.15, 0.10, 0.08, 0.07, 0.08, 0.12,   # 00-05: night
    0.25, 0.45, 0.60, 0.55, 0.50, 0.55,   # 06-11: morning ramp
    0.65, 0.60, 0.55, 0.55, 0.60, 0.70,   # 12-17: afternoon
    0.85, 1.00, 0.95, 0.85, 0.60, 0.30,   # 18-23: evening busy hour
)


@dataclass(frozen=True)
class DiurnalLoadModel:
    """Scales capacity with the time of day.

    Parameters
    ----------
    hourly_load:
        Relative load per hour (24 values, peak = 1.0).
    busy_hour_capacity_factor:
        Fraction of nominal capacity left at peak load; capacity
        interpolates linearly in load between 1.0 (idle) and this.
    """

    hourly_load: Sequence[float] = DEFAULT_HOURLY_LOAD
    busy_hour_capacity_factor: float = 0.45

    def __post_init__(self) -> None:
        if len(self.hourly_load) != 24:
            raise ValueError("hourly_load needs 24 values")
        if any(v < 0 for v in self.hourly_load):
            raise ValueError("loads must be >= 0")
        if not 0.0 < self.busy_hour_capacity_factor <= 1.0:
            raise ValueError("busy_hour_capacity_factor must be in (0, 1]")

    def load_at(self, epoch_s: float) -> float:
        """Relative load at an absolute time (linear between hours)."""
        hours = (epoch_s / 3600.0) % 24.0
        lower = int(hours) % 24
        upper = (lower + 1) % 24
        frac = hours - int(hours)
        return float(
            (1 - frac) * self.hourly_load[lower]
            + frac * self.hourly_load[upper]
        )

    def capacity_factor_at(self, epoch_s: float) -> float:
        """Capacity multiplier at an absolute time."""
        load = self.load_at(epoch_s)
        peak = max(self.hourly_load)
        normalised = load / peak if peak > 0 else 0.0
        return 1.0 - normalised * (1.0 - self.busy_hour_capacity_factor)

    def scale_profile(
        self, profile: ConditionProfile, epoch_s: float
    ) -> ConditionProfile:
        """Profile with its median capacity scaled for this time of day.

        Loss also rises mildly with load (congested cells drop more).
        """
        factor = self.capacity_factor_at(epoch_s)
        return replace(
            profile,
            bandwidth_kbps=profile.bandwidth_kbps * factor,
            loss_rate=min(0.5, profile.loss_rate * (2.0 - factor)),
        )
