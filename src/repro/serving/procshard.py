"""Process-backed shard workers: true multi-core serving.

The thread-backed :class:`~repro.serving.shard.ShardWorker` keeps the
serving tier's semantics honest, but the GIL serialises its hot path —
N shard *threads* diagnose no faster than one.  This module moves each
shard into its own **process** while preserving every contract the
rest of the serving layer depends on:

* **Partitioning** is unchanged: the parent routes with the same CRC32
  :func:`~repro.serving.shard.shard_index`, and subscribers never span
  shards, so per-subscriber entry order is preserved end to end
  (parent FIFO queue → single sender thread → pipe FIFO → child FIFO
  queue → the real :class:`ShardWorker` running inside the child).
* **Determinism**: the child wraps an actual :class:`ShardWorker` —
  the same validate → tracker → micro-batch → monitor code — so the
  diagnosis/alarm multisets are bit-identical to the serial monitor,
  merely computed on another core.
* **Supervision**: :class:`ProcShardWorker` (the parent-side handle)
  exposes the exact surface :class:`~repro.serving.supervisor.
  ShardSupervisor` supervises — ``state``/``alive``/``restarts``/
  ``error``/``heartbeat_s``/``restart()`` and the parent-side ingest
  ``queue`` — so process death (nonzero exit, broken pipe) is handled
  exactly like a worker-thread kill: restart with backoff, circuit
  break, quarantine the backlog into the DLQ.
* **Telemetry**: the child runs its own registry and ships
  :func:`~repro.obs.registry.registry_state_delta` increments on a
  heartbeat cadence and at drain; the parent folds them with
  ``MetricsRegistry.merge()``, so stage histograms, SLO windows and
  ``/metrics`` see child observations as if they were local.
  ``TraceContext`` stamps ride across the pipe inside the entries
  (``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, hence
  comparable across local processes), so ``queue_wait`` and ``e2e``
  spans cross the process boundary intact.

Pipe protocol (compact pickled tuples)::

    parent → child   ("entries", [WeblogEntry, ...])
                     ("drain",)
    child  → parent  ("out", {diagnoses, alarms, letters, counters})
                     ("hb", {open_sessions, pending})
                     ("registry", <state delta>)
                     ("dying", {error, kills})      then os._exit(!=0)
                     ("drained", {health, ...})     then clean exit

**Failure model.**  A process crash loses the child's *entire* state:
tracker sessions, pending batches, health rollups and its local queue
backlog — a strictly wider blast radius than a thread kill (which
keeps all of that alive under the replaced thread).  The parent
therefore marks **every subscriber it ever shipped to that shard** as
fault-affected, keeping the chaos suite's strong property — untouched
subscribers are bit-identical to a fault-free serial run — valid for
the process backend.  An injected kill consumes budget from the plan's
``kill_times`` across restarts (the parent decrements what each dead
child reports), so a respawned child does not kill-loop.

Known limitation: model hot-reload swaps the parent's manager only;
child processes keep the framework they were spawned with until their
next restart.  Exemplar traces sampled inside a child are not shipped.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set

from repro.capture.weblog import WeblogEntry
from repro.core.framework import QoEFramework, SessionDiagnosis
from repro.obs import (
    PipelineTelemetry,
    get_logger,
    get_recorder,
    get_registry,
    registry_state_delta,
)
from repro.online.early import ConvergenceReport, ProvisionalDiagnosis
from repro.realtime.monitor import Alarm, SubscriberHealth

from .batcher import MicroBatcher
from .dlq import DeadLetterQueue
from .models import ModelManager
from .queue import BoundedQueue, QueueClosed, QueueEmpty, QueueFull
from .shard import ShardWorker

__all__ = ["ProcShardConfig", "ProcShardWorker", "ShardProcessDied"]

_LOG = get_logger("serving.procshard")

#: Entries shipped per pipe message (amortises pickle + syscall cost).
_SEND_BATCH = 256
#: Child main-loop poll timeout; bounds drain/death detection latency.
_POLL_S = 0.02


class ShardProcessDied(RuntimeError):
    """A shard process exited without completing its drain handshake."""


def _default_start_method() -> str:
    """``spawn`` where it can work, ``fork`` where only fork can.

    Spawn is the safe default: a fork taken while sibling shards'
    sender/receiver threads hold registry or queue locks could deadlock
    the child.  But spawn re-imports the parent's ``__main__`` from its
    file path — when the driver came from stdin or ``exec`` (heredoc
    scripts, notebooks) there is no such file and every child would die
    on startup — so those parents fall back to fork.
    """
    if "spawn" not in mp.get_all_start_methods():
        return "fork"
    main_file = getattr(sys.modules.get("__main__"), "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        return "fork"
    return "spawn"


@dataclass
class ProcShardConfig:
    """Everything a shard process needs, picklable for ``spawn``.

    The framework ships by value: the child scores with the model the
    service held at spawn time (see the hot-reload limitation in the
    module docstring).  ``kill_at_entry``/``kill_times`` carry the
    fault plan's *remaining* kill budget for this shard — the parent
    decrements it across restarts.
    """

    index: int
    framework: QoEFramework
    queue_capacity: int = 1024
    max_batch: int = 32
    max_delay_s: float = 0.25
    idle_gap_s: float = 30.0
    min_media_chunks: int = 3
    severe_alarm_after: int = 3
    stall_ratio_alarm: float = 0.5
    min_sessions_for_ratio: int = 5
    clock_skew_tolerance_s: float = 5.0
    telemetry: bool = True
    sample_every: int = 128
    kill_at_entry: int = 0
    kill_times: int = 0
    heartbeat_interval_s: float = 0.25
    early_after_chunks: Optional[int] = None
    early_confidence: float = 0.0


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------


class _ForwardingDLQ:
    """Child-side dead-letter shim: buffer letters for the next flush.

    The parent performs the one real
    :meth:`~repro.serving.dlq.DeadLetterQueue.put` per letter, so DLQ
    metrics, ring events and eviction accounting stay single-sourced.
    """

    def __init__(self) -> None:
        self._letters: List[tuple] = []

    def put(
        self, entry: WeblogEntry, reason: str, shard: int, detail: str = ""
    ) -> None:
        self._letters.append((entry, reason, detail))

    def take(self) -> List[tuple]:
        letters, self._letters = self._letters, []
        return letters


class _KillBudget:
    """Child-side chaos hook honouring the plan's remaining kill budget."""

    def __init__(self, at_entry: int, times: int) -> None:
        self.at_entry = at_entry
        self.times = times
        self.fired = 0

    def hook(self, shard_index: int, entry: WeblogEntry, picked_up: int) -> None:
        if self.fired >= self.times or picked_up < self.at_entry:
            return
        self.fired += 1
        from repro.faults.injector import InjectedFault

        raise InjectedFault(
            f"injected kill: shard {shard_index} process at its entry "
            f"#{picked_up}"
        )


def _child_serve(conn, config: ProcShardConfig) -> None:
    # Zero whatever metric state came across a fork; under spawn this
    # registry is already fresh.  Unlabelled families delegate through
    # ``family._default`` which reset updates, and every labelled child
    # used below is created after this line.
    registry = get_registry()
    registry.reset()
    # A distinct queue label from the parent's ``shard{i}``: both
    # registries fold into one surface and must not collide series.
    queue = BoundedQueue(
        capacity=config.queue_capacity,
        policy="block",
        name=f"shard{config.index}w",
    )
    dlq = _ForwardingDLQ()
    shard_tel = (
        PipelineTelemetry(sample_every=config.sample_every).for_shard(
            config.index
        )
        if config.telemetry
        else None
    )
    kills = _KillBudget(config.kill_at_entry, config.kill_times)
    worker = ShardWorker(
        index=config.index,
        models=ModelManager(config.framework),
        queue=queue,
        batcher=MicroBatcher(
            max_batch=config.max_batch, max_delay_s=config.max_delay_s
        ),
        idle_gap_s=config.idle_gap_s,
        min_media_chunks=config.min_media_chunks,
        severe_alarm_after=config.severe_alarm_after,
        stall_ratio_alarm=config.stall_ratio_alarm,
        min_sessions_for_ratio=config.min_sessions_for_ratio,
        dead_letters=dlq,
        clock_skew_tolerance_s=config.clock_skew_tolerance_s,
        fault_hook=kills.hook if config.kill_times > 0 else None,
        telemetry=shard_tel,
        early_after_chunks=config.early_after_chunks,
        early_confidence=config.early_confidence,
    )
    worker.start()

    sent_diagnoses = 0
    sent_alarms = 0
    sent_provisional = 0
    sent_entries = -1
    prev_registry_state: Optional[Dict] = None
    backlog: deque = deque()
    draining = False
    last_beat = 0.0

    def flush_outputs() -> None:
        nonlocal sent_diagnoses, sent_alarms, sent_provisional, sent_entries
        diagnoses = worker.monitor.diagnoses
        alarms = worker.monitor.alarms
        provisional = worker.monitor.provisional
        letters = dlq.take()
        # Snapshot each length exactly once: the shard thread appends
        # concurrently, and a cursor taken from a *re-read* len() would
        # mark items as sent that were appended after the slice.
        n_diagnoses = len(diagnoses)
        n_alarms = len(alarms)
        n_provisional = len(provisional)
        n_entries = worker.entries_processed
        if (
            n_diagnoses == sent_diagnoses
            and n_alarms == sent_alarms
            and n_provisional == sent_provisional
            and not letters
            and n_entries == sent_entries
        ):
            return
        out = {
            "diagnoses": diagnoses[sent_diagnoses:n_diagnoses],
            "alarms": alarms[sent_alarms:n_alarms],
            "provisional": provisional[sent_provisional:n_provisional],
            "letters": letters,
            "entries_processed": n_entries,
            "quarantined": worker.quarantined,
        }
        sent_diagnoses = n_diagnoses
        sent_alarms = n_alarms
        sent_provisional = n_provisional
        sent_entries = n_entries
        conn.send(("out", out))

    def ship_registry() -> None:
        nonlocal prev_registry_state
        current = registry.to_state()
        conn.send(
            ("registry", registry_state_delta(current, prev_registry_state))
        )
        prev_registry_state = current

    try:
        while True:
            # Re-home received entries; never block long so heartbeats
            # keep flowing even when the worker is the bottleneck.
            while backlog and worker.state in ("created", "running"):
                try:
                    queue.put(backlog[0], timeout=_POLL_S)
                    backlog.popleft()
                except QueueFull:
                    break
            if conn.poll(0.0 if backlog else _POLL_S):
                msg = conn.recv()
                if msg[0] == "entries":
                    backlog.extend(msg[1])
                    continue  # bias towards keeping the worker fed
                if msg[0] == "drain":
                    while backlog and worker.state in ("created", "running"):
                        try:
                            queue.put(backlog[0], timeout=0.2)
                            backlog.popleft()
                        except QueueFull:
                            pass
                    queue.close()
                    draining = True
            if worker.state == "failed":
                if shard_tel is not None:
                    shard_tel.flush()
                flush_outputs()
                ship_registry()
                conn.send(
                    ("dying", {"error": repr(worker.error), "kills": kills.fired})
                )
                conn.close()
                os._exit(3)
            if draining and not worker.alive:
                flush_outputs()
                ship_registry()
                conn.send(
                    (
                        "drained",
                        {
                            "health": dict(worker.monitor.health),
                            "entries_processed": worker.entries_processed,
                            "quarantined": worker.quarantined,
                            "early_report": worker.early_report(),
                        },
                    )
                )
                conn.close()
                return
            now = time.monotonic()
            if now - last_beat >= config.heartbeat_interval_s:
                last_beat = now
                flush_outputs()
                ship_registry()
                conn.send(
                    (
                        "hb",
                        {
                            "open_sessions": worker.monitor.tracker.open_sessions,
                            "pending": worker.batcher.pending,
                        },
                    )
                )
    except (EOFError, BrokenPipeError, OSError):
        # Parent is gone; nothing left to report to.
        os._exit(0)


def _child_main(conn, config: ProcShardConfig) -> None:
    """Process entry point (module top level: fork- and spawn-safe)."""
    try:
        _child_serve(conn, config)
    except BaseException as exc:  # noqa: BLE001 - last-resort report
        try:
            conn.send(("dying", {"error": repr(exc), "kills": 0}))
            conn.close()
        except Exception:
            pass
        os._exit(4)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _RemoteTracker:
    """Mirror of the child tracker's health-relevant gauges."""

    def __init__(self) -> None:
        self.open_sessions = 0


class _RemoteMonitorView:
    """Duck-typed stand-in for the child's ``RealTimeMonitor``.

    Holds exactly what ``QoEService`` reads off a shard's monitor:
    the per-subscriber health map (shipped at drain), callback error
    count (callbacks run parent-side) and the tracker gauge view.
    """

    def __init__(self) -> None:
        self.health: Dict[str, SubscriberHealth] = {}
        self.callback_errors = 0
        self.tracker = _RemoteTracker()


class _RemoteBatcherView:
    """Mirror of the child batcher's ``pending`` gauge."""

    def __init__(self) -> None:
        self.pending = 0


class ProcShardWorker:
    """Parent-side handle for one shard process.

    Presents the :class:`~repro.serving.shard.ShardWorker` supervision
    and aggregation surface over a child process: the supervisor
    restarts it, trips its circuit and quarantines its parent-side
    queue exactly as it would a thread-backed shard.

    Parameters
    ----------
    config:
        The child's :class:`ProcShardConfig` (kill budget included).
    queue:
        Parent-side ingest queue — ``QoEService.submit`` puts here; a
        sender thread pumps it across the pipe.  Survives restarts, so
        a respawned child inherits the un-shipped backlog.
    dead_letters:
        The service's shared DLQ; child rejections are forwarded here.
    fold:
        Callable receiving child registry state deltas (usually
        ``RegistryFolder.absorb`` from :mod:`repro.serving.router`).
    faults:
        Optional fault injector: process deaths consume the plan's
        kill budget and mark every shipped subscriber affected.
    start_method:
        ``multiprocessing`` start method.  Default: see
        :func:`_default_start_method` (``spawn`` unless the parent's
        ``__main__`` has no importable file).
    """

    def __init__(
        self,
        config: ProcShardConfig,
        queue: BoundedQueue,
        dead_letters: DeadLetterQueue,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        fold: Optional[Callable[[Dict], None]] = None,
        faults=None,
        start_method: Optional[str] = None,
        on_provisional: Optional[
            Callable[[ProvisionalDiagnosis], None]
        ] = None,
    ) -> None:
        self.index = config.index
        self.config = config
        self.queue = queue
        self.dead_letters = dead_letters
        self._on_diagnosis = on_diagnosis
        self._on_alarm = on_alarm
        self._on_provisional = on_provisional
        self._fold = fold
        self._faults = faults
        self._mp = mp.get_context(start_method or _default_start_method())
        self.monitor = _RemoteMonitorView()
        self.batcher = _RemoteBatcherView()
        self.diagnoses: List[SessionDiagnosis] = []
        self.alarms: List[Alarm] = []
        self.provisional: List[ProvisionalDiagnosis] = []
        self._early_report: Optional[ConvergenceReport] = None
        self.entries_processed = 0
        self.quarantined = 0
        self.restarts = 0
        self.error: Optional[BaseException] = None
        self.state = "created"
        self.heartbeat_s = 0.0
        #: Every subscriber ever shipped to the child — the blast
        #: radius of a process death (all child state is lost with it).
        self._seen_subscribers: Set[str] = set()
        self._kill_times_left = config.kill_times
        self._entries_base = 0
        self._quarantined_base = 0
        self._process = None
        self._conn = None
        self._sender: Optional[threading.Thread] = None
        self._receiver: Optional[threading.Thread] = None
        self._sender_stop = threading.Event()
        self._drained = False
        self._death_report: Optional[Dict] = None

    # ------------------------------------------------------------------
    # ShardWorker surface
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def early_report(self) -> Optional[ConvergenceReport]:
        """The child's convergence report (shipped in the drain handshake)."""
        return self._early_report

    def heartbeat_age_s(self, now: Optional[float] = None) -> float:
        if self.heartbeat_s == 0.0:
            return 0.0
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.heartbeat_s)

    def start(self) -> None:
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        self._spawn()

    def restart(self) -> None:
        """Spawn a replacement process over the surviving parent queue.

        Unlike a thread restart, the dead child's tracker, batcher and
        health state are gone: the replacement starts empty and only
        the parent queue's un-shipped backlog is re-homed.  The fault
        plan's remaining kill budget rides in the new config so an
        injected kill cannot loop.
        """
        if self.alive:
            raise RuntimeError(f"shard {self.index} is alive; cannot restart")
        self._sender_stop.set()
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout=5.0)
        if self._conn is not None:
            self._conn.close()
        self.error = None
        self.restarts += 1
        self.monitor.tracker.open_sessions = 0
        self.batcher.pending = 0
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        self._spawn()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._process is not None:
            self._process.join(timeout)
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout)

    # ------------------------------------------------------------------
    # Process plumbing
    # ------------------------------------------------------------------

    def _spawn(self) -> None:
        config = replace(self.config, kill_times=self._kill_times_left)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        self._conn = parent_conn
        self._drained = False
        self._death_report = None
        self._sender_stop = threading.Event()
        self._process = self._mp.Process(
            target=_child_main,
            args=(child_conn, config),
            name=f"repro-procshard-{self.index}-r{self.restarts}",
            daemon=True,
        )
        self._process.start()
        # Drop the parent's reference to the child end so the pipe
        # reports EOF the moment the child exits.
        child_conn.close()
        self._receiver = threading.Thread(
            target=self._recv_loop,
            args=(parent_conn, self._process, self._sender_stop),
            name=f"repro-procshard-{self.index}-recv",
            daemon=True,
        )
        self._sender = threading.Thread(
            target=self._send_loop,
            args=(parent_conn, self._sender_stop),
            name=f"repro-procshard-{self.index}-send",
            daemon=True,
        )
        self._receiver.start()
        self._sender.start()

    def _send_loop(self, conn, stop: threading.Event) -> None:
        """Pump the parent queue across the pipe in batches."""
        closed = False
        try:
            while not stop.is_set():
                batch: List[WeblogEntry] = []
                try:
                    batch.append(self.queue.get(timeout=_POLL_S))
                    while len(batch) < _SEND_BATCH:
                        batch.append(self.queue.get(timeout=0))
                except QueueEmpty:
                    pass
                except QueueClosed:
                    closed = True
                if batch:
                    for entry in batch:
                        self._seen_subscribers.add(entry.subscriber_id)
                    conn.send(("entries", batch))
                if closed:
                    conn.send(("drain",))
                    return
        except (BrokenPipeError, OSError, ValueError):
            # Child died (receiver is handling it) or conn was closed
            # under a restart; entries pulled but unsent are lost with
            # the child — the at-most-once crash boundary.
            return

    def _recv_loop(self, conn, process, stop: threading.Event) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            self.heartbeat_s = time.monotonic()
            kind = msg[0]
            if kind == "out":
                self._apply_out(msg[1])
            elif kind == "registry":
                if self._fold is not None:
                    self._fold(msg[1])
            elif kind == "hb":
                self.monitor.tracker.open_sessions = msg[1]["open_sessions"]
                self.batcher.pending = msg[1]["pending"]
            elif kind == "dying":
                self._death_report = msg[1]
            elif kind == "drained":
                self._apply_drained(msg[1])
        if not self._drained:
            self._handle_death(process, stop)

    # ------------------------------------------------------------------
    # Message application (receiver thread only)
    # ------------------------------------------------------------------

    def _fire(self, callback, payload, name: str) -> None:
        if callback is None:
            return
        try:
            callback(payload)
        except Exception:
            self.monitor.callback_errors += 1
            _LOG.exception(
                "procshard_callback_failed", shard=self.index, callback=name
            )

    def _apply_out(self, out: Dict) -> None:
        for diagnosis in out["diagnoses"]:
            self.diagnoses.append(diagnosis)
            self._fire(self._on_diagnosis, diagnosis, "on_diagnosis")
        for alarm in out["alarms"]:
            self.alarms.append(alarm)
            self._fire(self._on_alarm, alarm, "on_alarm")
        for provisional in out.get("provisional", ()):
            self.provisional.append(provisional)
            self._fire(self._on_provisional, provisional, "on_provisional")
        for entry, reason, detail in out["letters"]:
            self.dead_letters.put(entry, reason, self.index, detail)
        self.entries_processed = (
            self._entries_base + out["entries_processed"]
        )
        self.quarantined = self._quarantined_base + out["quarantined"]

    def _apply_drained(self, payload: Dict) -> None:
        self.monitor.health.update(payload["health"])
        report = payload.get("early_report")
        if report is not None:
            self._early_report = (
                report
                if self._early_report is None
                else self._early_report.merge(report)
            )
        self.monitor.tracker.open_sessions = 0
        self.batcher.pending = 0
        self._drained = True
        self.state = "stopped"

    def _handle_death(self, process, stop: threading.Event) -> None:
        """The pipe hit EOF without a drain handshake: the child died."""
        stop.set()
        process.join(timeout=5.0)
        exitcode = process.exitcode
        report = self._death_report or {}
        kills = int(report.get("kills", 0))
        if kills:
            self._kill_times_left = max(0, self._kill_times_left - kills)
            if self._faults is not None:
                self._faults.note_remote_kills(self.index, kills)
        if self._faults is not None and self._seen_subscribers:
            self._faults.mark_affected(self._seen_subscribers)
        detail = report.get("error") or f"exit code {exitcode}"
        self.error = ShardProcessDied(
            f"shard {self.index} process died: {detail}"
        )
        # Base the counters so the replacement child's fresh counts
        # stack on what this incarnation already reported.
        self._entries_base = self.entries_processed
        self._quarantined_base = self.quarantined
        get_recorder().record(
            "shard_worker_died", shard=self.index, error=repr(self.error)
        )
        _LOG.error(
            "shard_process_died",
            shard=self.index,
            exitcode=exitcode,
            error=detail,
        )
        # Written last: the supervisor reacts to "failed" and must see
        # the error, accounting and stopped sender when it does.
        self.state = "failed"
