"""Shard workers: subscriber-partitioned online inference loops.

The correctness unit of the online pipeline is the *subscriber*: the
tracker needs each subscriber's entries in timestamp order, and health
rollups and alarm rules accumulate per subscriber.  Nothing couples
two subscribers — which makes subscriber identity the natural
partition key.  :func:`shard_index` hash-partitions subscribers over N
shards (a *stable* hash: ``zlib.crc32``, not Python's salted ``hash``)
and :class:`ShardWorker` runs one shard:

    ingest queue → OnlineSessionTracker → MicroBatcher →
    RealTimeMonitor.diagnose_records (health, alarms, callbacks)

Each worker owns its own tracker, batcher and
:class:`~repro.realtime.monitor.RealTimeMonitor`, and reuses the
monitor's diagnosis/health/alarm code verbatim — so N concurrent
shards produce exactly the diagnoses and alarms one serial monitor
would, merely interleaved differently across subscribers (the
``repro.serving.service`` determinism guarantee).

The model is resolved from the :class:`~repro.serving.models.ModelManager`
once per batch, so a hot-reload takes effect at the next batch
boundary and no batch ever mixes model versions.
"""

from __future__ import annotations

import threading
import zlib
from typing import Callable, List, Optional

from repro.capture.weblog import WeblogEntry
from repro.core.framework import SessionDiagnosis
from repro.obs import get_logger, get_registry
from repro.realtime.monitor import Alarm, RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker

from .batcher import MicroBatcher
from .models import ModelManager
from .queue import BoundedQueue, QueueClosed, QueueEmpty

__all__ = ["shard_index", "ShardWorker"]

_LOG = get_logger("serving.shard")

_REG = get_registry()
_ENTRIES = _REG.counter(
    "repro_serving_entries_total",
    "Weblog entries processed by shard workers.",
    labelnames=("shard",),
)

#: Poll timeout when a shard has nothing batched and nothing queued;
#: bounds how long shutdown and deadline checks can lag.
_IDLE_POLL_S = 0.05


def shard_index(subscriber_id: str, n_shards: int) -> int:
    """Stable hash partition of a subscriber over ``n_shards``.

    CRC32 of the UTF-8 id — deterministic across processes, runs and
    Python versions (the built-in ``hash`` is salted per process, which
    would re-partition subscribers on every restart).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(subscriber_id.encode("utf-8")) % n_shards


class ShardWorker:
    """One shard: a thread draining its queue into tracker + batcher + monitor.

    Not constructed directly in normal use —
    :class:`~repro.serving.service.QoEService` builds one per shard.
    """

    def __init__(
        self,
        index: int,
        models: ModelManager,
        queue: BoundedQueue,
        batcher: MicroBatcher,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
    ) -> None:
        self.index = index
        self.queue = queue
        self.batcher = batcher
        self._models = models
        self.monitor = RealTimeMonitor(
            models.current,
            tracker=OnlineSessionTracker(
                idle_gap_s=idle_gap_s, min_media_chunks=min_media_chunks
            ),
            severe_alarm_after=severe_alarm_after,
            stall_ratio_alarm=stall_ratio_alarm,
            min_sessions_for_ratio=min_sessions_for_ratio,
            on_diagnosis=on_diagnosis,
            on_alarm=on_alarm,
        )
        self.entries_processed = 0
        self.error: Optional[BaseException] = None
        self._entries_counter = _ENTRIES.labels(shard=str(index))
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )

    # ------------------------------------------------------------------

    @property
    def diagnoses(self) -> List[SessionDiagnosis]:
        return self.monitor.diagnoses

    @property
    def alarms(self) -> List[Alarm]:
        return self.monitor.alarms

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    # ------------------------------------------------------------------

    def _diagnose(self, batch) -> None:
        if not batch:
            return
        # One model version per batch: resolve the hot-swappable
        # reference exactly once, at the batch boundary.
        self.monitor.framework = self._models.current
        self.monitor.diagnose_records(batch)

    def _step(self) -> bool:
        """Process one queue item or one deadline; False once closed+drained."""
        until_due = self.batcher.seconds_until_due()
        wait = _IDLE_POLL_S if until_due is None else min(until_due, _IDLE_POLL_S)
        try:
            entry: WeblogEntry = self.queue.get(timeout=wait)
        except QueueEmpty:
            self._diagnose(self.batcher.take_due())
            return True
        except QueueClosed:
            return False
        self.entries_processed += 1
        self._entries_counter.inc()
        closed = self.monitor.tracker.observe(entry)
        for batch in self.batcher.add(closed):
            self._diagnose(batch)
        self._diagnose(self.batcher.take_due())
        return True

    def _shutdown(self) -> None:
        """Drain path: flush the batcher and the tracker, final alarm sweep.

        Pending batched records precede the tracker's force-closed
        sessions — preserving the per-subscriber order the serial
        monitor would have produced.
        """
        final = self.batcher.flush()
        final.extend(self.monitor.tracker.flush())
        self._diagnose(final)
        self.monitor.final_alarm_sweep()

    def _run(self) -> None:
        try:
            while self._step():
                pass
            self._shutdown()
        except BaseException as exc:  # pragma: no cover - defensive
            self.error = exc
            _LOG.exception("shard_worker_failed", shard=self.index)
