"""Shard workers: subscriber-partitioned online inference loops.

The correctness unit of the online pipeline is the *subscriber*: the
tracker needs each subscriber's entries in timestamp order, and health
rollups and alarm rules accumulate per subscriber.  Nothing couples
two subscribers — which makes subscriber identity the natural
partition key.  :func:`shard_index` hash-partitions subscribers over N
shards (a *stable* hash: ``zlib.crc32``, not Python's salted ``hash``)
and :class:`ShardWorker` runs one shard:

    ingest queue → validate (reject → dead-letter) →
    OnlineSessionTracker → MicroBatcher →
    RealTimeMonitor.diagnose_records (health, alarms, callbacks)

Each worker owns its own tracker, batcher and
:class:`~repro.realtime.monitor.RealTimeMonitor`, and reuses the
monitor's diagnosis/health/alarm code verbatim — so N concurrent
shards produce exactly the diagnoses and alarms one serial monitor
would, merely interleaved differently across subscribers (the
``repro.serving.service`` determinism guarantee).

The model is resolved from the :class:`~repro.serving.models.ModelManager`
once per batch, so a hot-reload takes effect at the next batch
boundary and no batch ever mixes model versions.

**Failure model.**  The worker is *restartable*: its queue, tracker,
batcher and monitor are plain state owned by this object, and the
thread is a replaceable execution vehicle.  When the run loop dies
(a bug — or an :class:`~repro.faults.injector.InjectedFault` from a
chaos plan), the worker lands in the ``failed`` state with the
exception preserved; :meth:`restart` mounts a fresh thread over the
same state and queue, losing at most the single in-flight entry.
A per-iteration heartbeat lets the
:class:`~repro.serving.supervisor.ShardSupervisor` distinguish dead
(restart) from wedged (flag) without waiting for drain.  Malformed
records never reach that path at all: they fail
:meth:`~repro.capture.weblog.WeblogEntry.validate` (or the
per-subscriber clock-monotonicity guard) and are quarantined in the
:class:`~repro.serving.dlq.DeadLetterQueue` instead.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Callable, Dict, List, Optional

from repro.capture.weblog import MalformedRecordError, WeblogEntry
from repro.core.framework import SessionDiagnosis
from repro.obs import ShardTelemetry, get_logger, get_recorder, get_registry
from repro.obs.pipeline import _FLUSH_HIGH_WATER as _TEL_HIGH_WATER
from repro.online.early import (
    ConvergenceReport,
    EarlyPredictor,
    ProvisionalDiagnosis,
)
from repro.realtime.monitor import Alarm, RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker

from .batcher import MicroBatcher
from .dlq import DeadLetterQueue
from .models import ModelManager
from .queue import BoundedQueue, QueueClosed, QueueEmpty

__all__ = ["shard_index", "ShardWorker"]

_LOG = get_logger("serving.shard")

_REG = get_registry()
_ENTRIES = _REG.counter(
    "repro_serving_entries_total",
    "Weblog entries processed by shard workers.",
    labelnames=("shard",),
)

#: Poll timeout when a shard has nothing batched and nothing queued;
#: bounds how long shutdown and deadline checks can lag.
_IDLE_POLL_S = 0.05


def shard_index(subscriber_id: str, n_shards: int) -> int:
    """Stable hash partition of a subscriber over ``n_shards``.

    CRC32 of the UTF-8 id — deterministic across processes, runs and
    Python versions (the built-in ``hash`` is salted per process, which
    would re-partition subscribers on every restart).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(subscriber_id.encode("utf-8")) % n_shards


class ShardWorker:
    """One shard: a thread draining its queue into tracker + batcher + monitor.

    Not constructed directly in normal use —
    :class:`~repro.serving.service.QoEService` builds one per shard.

    Parameters beyond the PR-3 set
    ------------------------------
    dead_letters:
        Shared :class:`DeadLetterQueue` for rejected records (a private
        one is created when omitted, for standalone use in tests).
    clock_skew_tolerance_s:
        How far a subscriber's timestamps may regress before the entry
        is treated as a skewed-clock artifact and quarantined.
    fault_hook:
        Chaos-plan hook called with ``(shard_index, entry, picked_up)``
        for every dequeued entry; may raise to kill this worker.
    telemetry:
        Optional :class:`~repro.obs.pipeline.ShardTelemetry` — when
        present, every dequeued record's trace context (attached by
        ``QoEService.submit``) is advanced through the stage
        timestamps and its durations buffered for the staged latency
        histograms.  ``None`` keeps the PR-5 hot path untouched.
    early_after_chunks / early_confidence / on_provisional:
        Enable the early-prediction path: the shard's tracker keeps
        streaming per-session feature state and an
        :class:`~repro.online.early.EarlyPredictor` emits provisional
        diagnoses after that many chunks (collected in
        :attr:`provisional`).  ``None`` (default) keeps the per-record
        hot path identical to the pre-early pipeline.
    """

    def __init__(
        self,
        index: int,
        models: ModelManager,
        queue: BoundedQueue,
        batcher: MicroBatcher,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        clock_skew_tolerance_s: float = 5.0,
        fault_hook: Optional[Callable[[int, WeblogEntry, int], None]] = None,
        telemetry: Optional[ShardTelemetry] = None,
        early_after_chunks: Optional[int] = None,
        early_confidence: float = 0.0,
        on_provisional: Optional[Callable[[ProvisionalDiagnosis], None]] = None,
    ) -> None:
        if clock_skew_tolerance_s < 0:
            raise ValueError("clock_skew_tolerance_s must be >= 0")
        self.index = index
        self.queue = queue
        self.batcher = batcher
        self._models = models
        early = (
            EarlyPredictor(
                models.current,
                after_chunks=early_after_chunks,
                min_confidence=early_confidence,
            )
            if early_after_chunks is not None
            else None
        )
        self.monitor = RealTimeMonitor(
            models.current,
            tracker=OnlineSessionTracker(
                idle_gap_s=idle_gap_s,
                min_media_chunks=min_media_chunks,
                streaming=early is not None,
            ),
            severe_alarm_after=severe_alarm_after,
            stall_ratio_alarm=stall_ratio_alarm,
            min_sessions_for_ratio=min_sessions_for_ratio,
            on_diagnosis=on_diagnosis,
            on_alarm=on_alarm,
            early=early,
            on_provisional=on_provisional,
        )
        # Early off: the hot path bypasses the monitor's per-entry hook
        # entirely, keeping the no-early per-record cost unchanged.
        self._observe = (
            self.monitor.observe_entry
            if early is not None
            else self.monitor.tracker.observe
        )
        self.dead_letters = (
            dead_letters if dead_letters is not None else DeadLetterQueue()
        )
        self.clock_skew_tolerance_s = clock_skew_tolerance_s
        self.fault_hook = fault_hook
        self.telemetry = telemetry
        self.entries_processed = 0
        self.quarantined = 0
        self.restarts = 0
        self.error: Optional[BaseException] = None
        #: created → running → stopped (clean exit) | failed (exception).
        #: Written only by the worker thread / restart(); read by the
        #: supervisor and health snapshots.
        self.state = "created"
        #: Monotonic timestamp of the last run-loop iteration; the
        #: supervisor's watchdog compares it against its staleness bound.
        self.heartbeat_s = 0.0
        #: Per-subscriber high-water timestamp for the monotonicity guard.
        self._last_ts: Dict[str, float] = {}
        self._entries_counter = _ENTRIES.labels(shard=str(index))
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )

    # ------------------------------------------------------------------

    @property
    def diagnoses(self) -> List[SessionDiagnosis]:
        return self.monitor.diagnoses

    @property
    def alarms(self) -> List[Alarm]:
        return self.monitor.alarms

    @property
    def provisional(self) -> List[ProvisionalDiagnosis]:
        return self.monitor.provisional

    def early_report(self) -> Optional[ConvergenceReport]:
        """Provisional-vs-final convergence (None when early is off)."""
        if self.monitor.early is None:
            return None
        return self.monitor.early.report()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def heartbeat_age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the run loop last iterated (0 before start)."""
        if self.heartbeat_s == 0.0:
            return 0.0
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.heartbeat_s)

    def start(self) -> None:
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        self._thread.start()

    def restart(self) -> None:
        """Mount a fresh thread over the surviving shard state.

        The queue (with everything still buffered), tracker, batcher,
        monitor, health rollups and the monotonicity watermark all
        carry over; only the entry that was in flight when the previous
        thread died is lost (at-most-once across a crash boundary).
        """
        if self._thread.is_alive():
            raise RuntimeError(f"shard {self.index} is alive; cannot restart")
        self.error = None
        self.restarts += 1
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-shard-{self.index}-r{self.restarts}",
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    # ------------------------------------------------------------------

    def _diagnose(self, batch) -> None:
        if not batch:
            return
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        # One model version per batch: resolve the hot-swappable
        # reference exactly once, at the batch boundary.
        self.monitor.framework = self._models.current
        self.monitor.diagnose_records(batch)
        if tel is not None:
            done = time.perf_counter()
            tel.note("diagnose", done - started)
            for record in batch:
                ctx = record.__dict__.get("_trace_ctx")
                if ctx is not None:
                    tel.note("batch_wait", started - ctx.t_tracked, ctx)
                    if ctx.stages is not None:
                        # Sampled exemplar: apportion the batch's
                        # diagnose time as this record's share.
                        ctx.stages["diagnose"] = (done - started) / len(batch)
                    tel.complete(ctx, done)
            # Batch boundary: one observe_many per stage instead of
            # several histogram locks per record.
            tel.flush()

    def _dead_letter(self, entry: WeblogEntry, reason: str, detail: str) -> None:
        self.quarantined += 1
        self.dead_letters.put(entry, reason, self.index, detail)

    def _admit(self, entry: WeblogEntry) -> None:
        """Validate one entry; raises :class:`MalformedRecordError`.

        Field validation re-runs here (not just at construction)
        because a replay/capture path can hand over records that never
        went through ``__init__`` — which is exactly how garbled
        collector output arrives.  The monotonicity guard then rejects
        timestamps that regress beyond the skew tolerance: a
        backwards-jumping clock would otherwise fold entries into the
        wrong session or fake an idle gap.
        """
        entry.validate()
        last = self._last_ts.get(entry.subscriber_id)
        if last is not None and entry.timestamp_s < last - self.clock_skew_tolerance_s:
            error = MalformedRecordError(
                f"timestamp regressed {last - entry.timestamp_s:.1f}s for "
                f"subscriber {entry.subscriber_id} (tolerance "
                f"{self.clock_skew_tolerance_s:g}s)"
            )
            error.reason = "non_monotonic"
            raise error
        if last is None or entry.timestamp_s > last:
            self._last_ts[entry.subscriber_id] = entry.timestamp_s

    def _step(self) -> bool:
        """Process one queue item or one deadline; False once closed+drained."""
        until_due = self.batcher.seconds_until_due()
        wait = _IDLE_POLL_S if until_due is None else min(until_due, _IDLE_POLL_S)
        try:
            entry: WeblogEntry = self.queue.get(timeout=wait)
        except QueueEmpty:
            self._diagnose(self.batcher.take_due())
            return True
        except QueueClosed:
            return False
        self.entries_processed += 1
        self._entries_counter.inc()
        # Telemetry is inlined here rather than routed through
        # ShardTelemetry.note(): this block runs per dequeued entry and
        # a method call per stage costs more than the <5% overhead gate
        # allows on one core.  The buf_* lists alias the shard's stage
        # buffers (flush clears in place, so the references stay valid).
        tel = self.telemetry
        ctx = entry.__dict__.get("_trace_ctx") if tel is not None else None
        if ctx is not None:
            t_dequeued = time.perf_counter()
            queue_wait = t_dequeued - ctx.t_enqueued
            tel.buf_queue_wait.append(queue_wait)
            stages = ctx.stages
            if stages is not None:
                stages["queue_wait"] = queue_wait
        if self.fault_hook is not None:
            self.fault_hook(self.index, entry, self.entries_processed)
        try:
            self._admit(entry)
        except MalformedRecordError as exc:
            self._dead_letter(entry, self._reject_reason(exc), str(exc))
            return True
        if ctx is not None:
            t_validated = time.perf_counter()
            tel.buf_validate.append(t_validated - t_dequeued)
            if stages is not None:
                stages["validate"] = t_validated - t_dequeued
        closed = self._observe(entry)
        if ctx is not None:
            now = time.perf_counter()
            ctx.t_tracked = now
            tel.buf_track.append(now - t_validated)
            if stages is not None:
                stages["track"] = now - t_validated
            if len(tel.buf_queue_wait) >= _TEL_HIGH_WATER:
                tel.flush()
            # A closed session's end-to-end latency is anchored on the
            # entry whose arrival closed it.
            for record in closed:
                record.__dict__["_trace_ctx"] = ctx
        for batch in self.batcher.add(closed):
            self._diagnose(batch)
        self._diagnose(self.batcher.take_due())
        return True

    @staticmethod
    def _reject_reason(exc: MalformedRecordError) -> str:
        return getattr(exc, "reason", "malformed")

    def _shutdown(self) -> None:
        """Drain path: flush the batcher and the tracker, final alarm sweep.

        Pending batched records precede the tracker's force-closed
        sessions — preserving the per-subscriber order the serial
        monitor would have produced.
        """
        final = self.batcher.flush()
        final.extend(self.monitor.tracker.flush())
        self._diagnose(final)
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        self.monitor.final_alarm_sweep()
        if tel is not None:
            tel.note("alarm_sweep", time.perf_counter() - started)
            tel.flush()

    def _run(self) -> None:
        try:
            while self._step():
                self.heartbeat_s = time.monotonic()
            self._shutdown()
            self.state = "stopped"
        except BaseException as exc:
            self.error = exc
            self.state = "failed"
            if self.telemetry is not None:
                self.telemetry.flush()
            get_recorder().record(
                "shard_worker_died", shard=self.index, error=repr(exc)
            )
            _LOG.exception("shard_worker_failed", shard=self.index)
