"""Trace replay: drive the service from captured or simulated weblogs.

Dubin et al.'s real-time classifier and Bronzino/Schmitt et al.'s
deployment reports both lean on the same development loop: re-run
*recorded* traffic against the live inference stack, faster than real
time, and compare against known-good output.  This module is that
loop's driver:

* :func:`synthetic_trace` — a time-ordered weblog stream from the
  corpus simulator (§5.2-style encrypted traffic), optionally folded
  onto a fixed subscriber population so per-subscriber health and
  alarm rules actually accumulate;
* :class:`TraceReplayer` — feeds a trace into a
  :class:`~repro.serving.service.QoEService` honouring the original
  inter-arrival gaps scaled by ``speedup`` (``0`` = as fast as the
  service admits, the mode benchmarks and CI use).  Give it a
  :class:`~repro.faults.FaultInjector` and the trace is first run
  through the chaos plan's deterministic record transforms
  (corrupt/drop/duplicate/reorder/skew) — the harness the fault tests
  and the CI chaos smoke drive.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.capture.weblog import WeblogEntry
from repro.datasets.generate import CorpusConfig, generate_corpus
from repro.obs import get_logger, get_registry, trace

from .service import QoEService

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.faults import FaultInjector

__all__ = ["ReplayStats", "TraceReplayer", "synthetic_trace"]

_LOG = get_logger("serving.replay")

_REG = get_registry()
_REPLAYED = _REG.counter(
    "repro_serving_replay_entries_total",
    "Weblog entries submitted by the trace replayer.",
)


@dataclass(frozen=True)
class ReplayStats:
    """Outcome of one replay run."""

    entries: int
    accepted: int
    shed: int
    trace_span_s: float
    wall_s: float

    @property
    def entries_per_s(self) -> float:
        return self.entries / self.wall_s if self.wall_s > 0 else float("inf")


class TraceReplayer:
    """Replay a time-ordered weblog trace into a running service.

    Parameters
    ----------
    service:
        A started :class:`QoEService` (entries are pushed via
        :meth:`~QoEService.submit`).
    speedup:
        Trace-time seconds per wall-clock second.  ``10`` compresses a
        ten-minute capture into one minute; ``0`` (the default)
        disables pacing entirely and submits as fast as backpressure
        allows.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; its record
        transforms (:meth:`~repro.faults.FaultInjector.plan_trace`)
        are applied to the trace before submission.  A no-op plan
        passes the trace through byte-identical.
    """

    def __init__(
        self,
        service: QoEService,
        speedup: float = 0.0,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if speedup < 0:
            raise ValueError("speedup must be >= 0 (0 = unpaced)")
        self.service = service
        self.speedup = speedup
        self.faults = faults

    def replay(self, entries: Sequence[WeblogEntry]) -> ReplayStats:
        """Submit the whole trace; returns accounting for the run."""
        entries = list(entries)
        if self.faults is not None:
            entries = self.faults.plan_trace(entries)
        accepted = 0
        previous_ts: Optional[float] = None
        started = time.perf_counter()
        with trace("serving.replay") as span:
            for entry in entries:
                if self.speedup > 0 and previous_ts is not None:
                    gap = (entry.timestamp_s - previous_ts) / self.speedup
                    if gap > 0:
                        time.sleep(gap)
                previous_ts = entry.timestamp_s
                accepted += self.service.submit(entry)
                _REPLAYED.inc()
            span.add("entries", len(entries))
        wall_s = time.perf_counter() - started
        trace_span_s = (
            entries[-1].timestamp_s - entries[0].timestamp_s if entries else 0.0
        )
        stats = ReplayStats(
            entries=len(entries),
            accepted=accepted,
            shed=len(entries) - accepted,
            trace_span_s=trace_span_s,
            wall_s=wall_s,
        )
        _LOG.info(
            "replay_finished",
            entries=stats.entries,
            shed=stats.shed,
            wall_s=round(wall_s, 3),
            rate=round(stats.entries_per_s, 1),
        )
        return stats


def synthetic_trace(
    n_sessions: int,
    seed: int = 0,
    subscribers: Optional[int] = None,
    adaptive_fraction: float = 0.25,
) -> List[WeblogEntry]:
    """A time-ordered encrypted weblog trace for replay runs.

    Generates a §5.2-style encrypted corpus (one simulated subscriber
    per session, sessions sequential in time) and, when ``subscribers``
    is given, folds the population onto that many fixed subscriber ids
    round-robin — giving each synthetic subscriber a multi-session
    history so health rollups and alarm rules engage.  The fold is
    order-safe: sessions do not overlap in time, so each folded
    subscriber's entries remain in timestamp order.
    """
    corpus = generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=adaptive_fraction,
            encrypted=True,
        )
    )
    entries = corpus.weblogs
    if subscribers is None:
        return entries
    if subscribers < 1:
        raise ValueError("subscribers must be >= 1")
    mapping = {}
    folded = []
    for entry in entries:
        target = mapping.setdefault(
            entry.subscriber_id, f"sub-{len(mapping) % subscribers:04d}"
        )
        folded.append(dataclasses.replace(entry, subscriber_id=target))
    return folded
