"""Shard supervision: watchdog, bounded restarts, circuit breaker.

Before this module existed a shard-thread exception was invisible
until ``drain()``: the queue kept filling, nobody consumed it, and the
service found out at shutdown.  The supervisor closes that gap with a
small state machine per shard::

    running ──exception──► failed ──restart (≤ max_restarts,────► running
       │                     │      exponential backoff)
       │                     └─budget exhausted─► circuit OPEN
       └──heartbeat stale──► PARTITIONED (hysteresis both ways;
                             quarantine backlog, do NOT restart)

Every shard also carries a typed **health state** — ``healthy`` /
``partitioned`` / ``dead`` — because heartbeat staleness alone only
*approximates* partition:

* ``healthy`` — alive, heartbeats fresh.
* ``partitioned`` — reachable but slow: ``partition_enter_ticks``
  consecutive stale-heartbeat polls while the transport still reports
  ``connection_alive`` (duck-typed; thread/process shards are always
  "alive" in this sense, so for them the state degenerates to the old
  stalled flag).  A partitioned shard's state is intact — restarting
  it would *destroy* work — so the supervisor quarantines its unsent
  parent-side backlog into the DLQ (reason ``partitioned``, via the
  shard's ``quarantine_backlog`` hook where it exists) and waits.
  ``partition_exit_ticks`` consecutive fresh heartbeats exit the
  state; the hysteresis keeps one delayed heartbeat from flapping the
  quarantine machinery.
* ``dead`` — the worker failed (thread death, process exit, reconnect
  deadline spent) or its circuit is open.  Restart/circuit semantics
  unchanged.

* **Watchdog.**  A daemon thread polls every ``poll_interval_s``:
  thread liveness (``Thread.is_alive``) catches death promptly, the
  per-iteration heartbeat catches a *wedged* worker (e.g. blocked in a
  subscriber callback) that is technically alive.
* **Restart.**  :meth:`ShardWorker.restart` mounts a fresh thread over
  the surviving shard state — same queue (with its backlog), tracker,
  batcher, monitor — so a restart re-homes the shard's entire pending
  workload and loses at most one in-flight entry.  Attempts are spaced
  by exponential backoff so a crash-looping shard cannot spin the CPU.
* **Circuit breaker.**  After ``max_restarts`` failed revivals the
  shard's circuit opens: the service stops routing to it
  (``submit`` rejects), everything still queued is quarantined in the
  dead-letter queue (reason ``circuit_open``), and the service reports
  itself *degraded* instead of crashing — the paper's operator-network
  setting wants a monitor that limps, not one that takes the tap down.

All transitions are observable: ``repro_serving_shard_restarts_total``,
``repro_serving_circuit_open{shard}``, ``repro_serving_shard_stalled``,
``repro_serving_shard_state{shard,state}`` (one-hot gauge),
``repro_serving_shard_state_transitions_total{shard,state}`` and the
per-shard block of :meth:`QoEService.health`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence, Set

from repro.obs import get_logger, get_recorder, get_registry

from .dlq import DeadLetterQueue
from .shard import ShardWorker

__all__ = ["ShardSupervisor", "SHARD_STATES"]

_LOG = get_logger("serving.supervisor")

_REG = get_registry()
_RESTARTS = _REG.counter(
    "repro_serving_shard_restarts_total",
    "Shard workers restarted by the supervisor, by shard.",
    labelnames=("shard",),
)
_CIRCUIT = _REG.gauge(
    "repro_serving_circuit_open",
    "1 while a shard's circuit breaker is open (non-restartable).",
    labelnames=("shard",),
)
_STALLED = _REG.gauge(
    "repro_serving_shard_stalled",
    "Shards whose heartbeat exceeded the watchdog staleness bound.",
)
_STATE = _REG.gauge(
    "repro_serving_shard_state",
    "One-hot shard health state (healthy / partitioned / dead).",
    labelnames=("shard", "state"),
)
_TRANSITIONS = _REG.counter(
    "repro_serving_shard_state_transitions_total",
    "Shard health-state transitions, by shard and entered state.",
    labelnames=("shard", "state"),
)

#: The typed health states, in "one-hot gauge" order.
SHARD_STATES = ("healthy", "partitioned", "dead")


class ShardSupervisor:
    """Watchdog over a fixed set of :class:`ShardWorker` objects.

    Duck-typed over the worker surface (``state``/``alive``/``error``/
    ``restarts``/``restart()``/``heartbeat_age_s()``/``queue``), so the
    process-backed :class:`~repro.serving.procshard.ProcShardWorker`
    is supervised by the identical state machine: a dead *process*
    (nonzero exit, broken pipe) surfaces as ``state == "failed"`` and
    gets the same restart-with-backoff → circuit-break → quarantine
    treatment as a dead worker thread.

    Parameters
    ----------
    shards:
        The workers to supervise (owned by the :class:`QoEService`).
    dead_letters:
        Where a broken shard's queued entries are quarantined.
    max_restarts:
        Restart budget *per shard*; the budget spent, the circuit
        opens.  ``0`` disables restarts (first failure trips the
        breaker).
    backoff_base_s, backoff_factor, backoff_max_s:
        Restart *n* of a shard waits
        ``min(base * factor**(n-1), max)`` after the failure was seen.
    poll_interval_s:
        Watchdog cadence.
    heartbeat_timeout_s:
        Heartbeat staleness beyond which a live worker's poll counts
        as stale (one input to the partition hysteresis).
    partition_enter_ticks:
        Consecutive stale polls before a live shard is declared
        *partitioned* (>= 1; 1 restores flag-on-first-stale).
    partition_exit_ticks:
        Consecutive fresh polls before a partitioned shard is declared
        healthy again.
    faults:
        Optional fault injector; observed partitions are accounted via
        its ``note_partition``.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        shards: Sequence[ShardWorker],
        dead_letters: DeadLetterQueue,
        max_restarts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        poll_interval_s: float = 0.02,
        heartbeat_timeout_s: float = 5.0,
        partition_enter_ticks: int = 3,
        partition_exit_ticks: int = 2,
        faults=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if partition_enter_ticks < 1 or partition_exit_ticks < 1:
            raise ValueError("partition hysteresis ticks must be >= 1")
        self._shards = list(shards)
        self._dlq = dead_letters
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.partition_enter_ticks = partition_enter_ticks
        self.partition_exit_ticks = partition_exit_ticks
        self._faults = faults
        self._clock = clock
        self._lock = threading.RLock()
        self._open_circuits: Set[int] = set()
        self._stalled: Set[int] = set()
        #: Hysteresis counters: consecutive stale / fresh polls.
        self._stale_ticks: dict = {}
        self._fresh_ticks: dict = {}
        #: Shard index → last *published* typed health state.
        self._states: dict = {
            shard.index: "healthy" for shard in self._shards
        }
        self._quarantined_by_partition = 0
        #: Shard index → monotonic deadline of its next restart attempt.
        self._next_attempt: dict = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        for shard in self._shards:
            self._publish_state(shard.index, "healthy", initial=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def circuit_open(self, index: int) -> bool:
        with self._lock:
            return index in self._open_circuits

    @property
    def open_circuits(self) -> List[int]:
        with self._lock:
            return sorted(self._open_circuits)

    @property
    def stalled_shards(self) -> List[int]:
        """Back-compat alias: the shards currently *partitioned*."""
        with self._lock:
            return sorted(self._stalled)

    def shard_state(self, index: int) -> str:
        """The typed health state of one shard (see :data:`SHARD_STATES`)."""
        with self._lock:
            return self._states.get(index, "healthy")

    @property
    def shard_states(self) -> dict:
        """Shard index → typed health state, for every supervised shard."""
        with self._lock:
            return dict(self._states)

    @property
    def total_restarts(self) -> int:
        return sum(shard.restarts for shard in self._shards)

    @property
    def quarantined_by_partition(self) -> int:
        """Entries shed to the DLQ by partition quarantine (not circuits)."""
        with self._lock:
            return self._quarantined_by_partition

    @property
    def degraded(self) -> bool:
        """True once any shard is non-restartable or wedged."""
        with self._lock:
            return bool(self._open_circuits or self._stalled)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._thread = threading.Thread(
            target=self._watch, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the watchdog thread (idempotent).

        Restart authority passes to the caller — ``drain()`` uses
        :meth:`ensure_drained` for its synchronous final pass.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _watch(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self._tick()

    # ------------------------------------------------------------------
    # Supervision logic
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self._clock()
        with self._lock:
            for shard in self._shards:
                if shard.index in self._open_circuits:
                    continue
                if shard.state == "failed":
                    self._handle_failed(shard, now, honour_backoff=True)
                elif shard.state == "running" and shard.alive:
                    self._check_heartbeat(shard, now)
            for shard in self._shards:
                self._publish_state(shard.index, self._classify(shard))

    def _classify(self, shard: ShardWorker) -> str:
        # Caller holds the lock.
        if shard.index in self._open_circuits or shard.state == "failed":
            return "dead"
        if shard.index in self._stalled:
            return "partitioned"
        return "healthy"

    def _publish_state(
        self, index: int, state: str, initial: bool = False
    ) -> None:
        # Caller holds the lock (or is the constructor).
        previous = self._states.get(index)
        self._states[index] = state
        for name in SHARD_STATES:
            _STATE.labels(shard=str(index), state=name).set(
                1 if name == state else 0
            )
        if initial or state == previous:
            return
        _TRANSITIONS.labels(shard=str(index), state=state).inc()
        get_recorder().record(
            "shard_state_changed",
            shard=index,
            state=state,
            previous=previous,
        )
        _LOG.info(
            "shard_state_changed", shard=index, state=state, previous=previous
        )

    def _handle_failed(
        self, shard: ShardWorker, now: float, honour_backoff: bool
    ) -> None:
        # Caller holds the lock.
        if shard.restarts >= self.max_restarts:
            self._trip_circuit(shard)
            return
        deadline = self._next_attempt.get(shard.index)
        if deadline is None:
            delay = min(
                self.backoff_base_s * self.backoff_factor ** shard.restarts,
                self.backoff_max_s,
            )
            self._next_attempt[shard.index] = now + delay
            _LOG.warning(
                "shard_failure_detected",
                shard=shard.index,
                error=repr(shard.error),
                restart_in_s=round(delay, 3),
                restarts_used=shard.restarts,
                max_restarts=self.max_restarts,
            )
            # A shard death is a postmortem trigger: capture the ring
            # while the evidence is fresh (no-op without a dump dir).
            get_recorder().dump(
                "shard_failed",
                shard=shard.index,
                error=repr(shard.error),
                restarts_used=shard.restarts,
                max_restarts=self.max_restarts,
            )
            if not honour_backoff:
                self._restart(shard)
            return
        if not honour_backoff or now >= deadline:
            self._restart(shard)

    def _restart(self, shard: ShardWorker) -> None:
        # Caller holds the lock.
        self._next_attempt.pop(shard.index, None)
        shard.restart()
        _RESTARTS.labels(shard=str(shard.index)).inc()
        get_recorder().record(
            "shard_restarted",
            shard=shard.index,
            restart=shard.restarts,
            queue_depth=shard.queue.depth,
        )
        _LOG.info(
            "shard_restarted",
            shard=shard.index,
            restart=shard.restarts,
            queue_depth=shard.queue.depth,
        )

    def _trip_circuit(self, shard: ShardWorker) -> None:
        # Caller holds the lock.
        if shard.index in self._open_circuits:
            return
        self._open_circuits.add(shard.index)
        self._next_attempt.pop(shard.index, None)
        _CIRCUIT.labels(shard=str(shard.index)).set(1)
        self._publish_state(shard.index, "dead")
        # Record + dump the postmortem BEFORE quarantining the abandoned
        # queue: each quarantine appends a ring event, and a deep queue
        # would evict the very evidence (worker deaths, restarts, this
        # transition) the postmortem exists to preserve.
        recorder = get_recorder()
        recorder.record(
            "circuit_open",
            shard=shard.index,
            restarts=shard.restarts,
            queued=shard.queue.depth,
            error=repr(shard.error),
        )
        recorder.dump(
            "circuit_open",
            shard=shard.index,
            restarts=shard.restarts,
            queued=shard.queue.depth,
            error=repr(shard.error),
        )
        abandoned = shard.queue.drain_remaining()
        for entry in abandoned:
            self._dlq.put(
                entry,
                "circuit_open",
                shard.index,
                f"restart budget ({self.max_restarts}) exhausted",
            )
        _LOG.error(
            "shard_circuit_open",
            shard=shard.index,
            restarts=shard.restarts,
            quarantined=len(abandoned),
            error=repr(shard.error),
        )

    def _check_heartbeat(self, shard: ShardWorker, now: float) -> None:
        # Caller holds the lock.
        index = shard.index
        stale = shard.heartbeat_age_s(now) > self.heartbeat_timeout_s
        # A stale heartbeat over a *dead* transport is a reconnect in
        # flight, not a partition: it resolves into fresh heartbeats or
        # into state == "failed" on its own.  Thread/process shards
        # have no transport and report always-alive (duck typing), so
        # for them staleness alone drives the state, as before.
        partition_signal = stale and getattr(shard, "connection_alive", True)
        if index in self._stalled:
            if partition_signal:
                self._fresh_ticks[index] = 0
                # Keep shedding: backlog accumulated against a shard
                # that is not acking belongs in the DLQ, not in RAM.
                self._quarantine_partitioned(shard)
            elif not stale:
                fresh = self._fresh_ticks.get(index, 0) + 1
                self._fresh_ticks[index] = fresh
                if fresh >= self.partition_exit_ticks:
                    self._exit_partition(shard)
            return
        if partition_signal:
            count = self._stale_ticks.get(index, 0) + 1
            self._stale_ticks[index] = count
            if count >= self.partition_enter_ticks:
                self._enter_partition(shard, now)
        else:
            self._stale_ticks[index] = 0

    def _enter_partition(self, shard: ShardWorker, now: float) -> None:
        # Caller holds the lock.
        index = shard.index
        self._stalled.add(index)
        self._stale_ticks[index] = 0
        self._fresh_ticks[index] = 0
        _STALLED.set(len(self._stalled))
        age = round(shard.heartbeat_age_s(now), 2)
        _LOG.error(
            "shard_partitioned",
            shard=index,
            heartbeat_age_s=age,
            enter_ticks=self.partition_enter_ticks,
        )
        if self._faults is not None and hasattr(self._faults, "note_partition"):
            self._faults.note_partition(index)
        # A partition is a postmortem trigger like a death: capture the
        # ring while the evidence is fresh (no-op without a dump dir).
        get_recorder().dump(
            "shard_partitioned",
            shard=index,
            heartbeat_age_s=age,
            queue_depth=shard.queue.depth,
        )
        self._quarantine_partitioned(shard)

    def _quarantine_partitioned(self, shard: ShardWorker) -> int:
        # Caller holds the lock.  Duck-typed: only transports that can
        # distinguish "shipped" from "still mine" (the socket backend's
        # unacked buffer) expose quarantine_backlog; for the rest the
        # backlog stays queued — a stalled thread may still drain it.
        quarantine = getattr(shard, "quarantine_backlog", None)
        if quarantine is None:
            return 0
        shed = quarantine(self._dlq)
        if shed:
            self._quarantined_by_partition += shed
            get_recorder().record(
                "partition_backlog_quarantined", shard=shard.index, shed=shed
            )
            _LOG.warning(
                "partition_backlog_quarantined", shard=shard.index, shed=shed
            )
        return shed

    def _exit_partition(self, shard: ShardWorker) -> None:
        # Caller holds the lock.
        self._stalled.discard(shard.index)
        self._stale_ticks[shard.index] = 0
        self._fresh_ticks[shard.index] = 0
        _STALLED.set(len(self._stalled))
        _LOG.info(
            "shard_recovered_from_partition",
            shard=shard.index,
            exit_ticks=self.partition_exit_ticks,
        )

    # ------------------------------------------------------------------
    # Drain support
    # ------------------------------------------------------------------

    def ensure_drained(self, timeout_s: float = 60.0) -> None:
        """Synchronous final pass: every shard ends stopped or broken.

        Called by ``QoEService.drain()`` *after* :meth:`stop` and after
        the ingest queues are closed.  A shard found dead mid-restart
        (or failing again while flushing) is restarted immediately —
        backoff is pointless once intake has ceased — until its budget
        runs out, at which point its circuit opens and its backlog is
        quarantined.  Returns once no shard is running, or after
        ``timeout_s`` (workers are daemon threads; a wedged one cannot
        block shutdown forever).
        """
        deadline = self._clock() + timeout_s
        while self._clock() < deadline:
            pending = False
            with self._lock:
                for shard in self._shards:
                    if shard.index in self._open_circuits:
                        continue
                    if shard.state == "failed":
                        self._handle_failed(
                            shard, self._clock(), honour_backoff=False
                        )
                        pending = True
                    elif shard.alive:
                        pending = True
            if not pending:
                return
            time.sleep(self.poll_interval_s)
        with self._lock:
            still_running = [s.index for s in self._shards if s.alive]
        if still_running:
            _LOG.error(
                "drain_timeout", shards=still_running, timeout_s=timeout_s
            )
            get_recorder().dump(
                "drain_timeout", shards=still_running, timeout_s=timeout_s
            )
