"""Routing/aggregation tier over N shard processes.

:class:`~repro.serving.service.QoEService` stays the single
``submit()`` / ``health()`` / ``/metrics`` surface regardless of shard
backend; this module is the thin layer that makes the *process*
backend look like the thread one from above:

:class:`RegistryFolder`
    The merge point for child telemetry.  Every shard process ships
    :func:`~repro.obs.registry.registry_state_delta` increments on its
    heartbeat cadence and at drain; the folder rebuilds each delta
    with :meth:`MetricsRegistry.from_state` and folds it into the
    parent registry with :meth:`MetricsRegistry.merge`.  Because the
    parent's ``PipelineTelemetry`` and ``SLOEngine`` hold children of
    that same registry, child stage observations land directly in the
    histograms the SLO windows and ``/metrics`` read — no second
    exposition path.  A malformed delta is counted and dropped, never
    raised into the receiver thread.

:class:`ProcessShardRouter`
    Builds the :class:`~repro.serving.procshard.ProcShardWorker` fleet
    for a service: one parent-side queue + config + kill-spec per
    shard, all sharing one folder and the service's DLQ.  Routing
    itself stays in ``QoEService.submit`` via the same CRC32
    :func:`~repro.serving.shard.shard_index` used by the thread
    backend — the router's job is construction and aggregation, not a
    second code path for the hot loop.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.core.framework import SessionDiagnosis
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.realtime.monitor import Alarm

from .dlq import DeadLetterQueue
from .procshard import ProcShardConfig, ProcShardWorker
from .queue import BoundedQueue

__all__ = ["RegistryFolder", "ProcessShardRouter"]

_LOG = get_logger("serving.router")


class RegistryFolder:
    """Folds shard-process registry deltas into one parent registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self.folds = 0
        self.errors = 0

    def absorb(self, delta_state: Dict) -> None:
        """Merge one child delta; errors are counted, never propagated.

        Receiver threads call this — a bad delta (schema drift,
        mismatched buckets) must degrade telemetry, not kill the
        thread that also handles the shard's death reporting.
        """
        try:
            self._registry.merge(MetricsRegistry.from_state(delta_state))
        except Exception:
            with self._lock:
                self.errors += 1
            _LOG.exception("registry_fold_failed")
            return
        with self._lock:
            self.folds += 1

    def snapshot(self) -> Dict:
        with self._lock:
            return {"folds": self.folds, "errors": self.errors}


class ProcessShardRouter:
    """Constructs and owns the process-shard fleet for one service.

    Parameters mirror the service's shard-relevant knobs; ``faults``
    supplies per-shard kill specs (`kill_spec_for`) and receives
    process-death accounting from the workers.
    """

    def __init__(
        self,
        n_shards: int,
        framework,
        dead_letters: DeadLetterQueue,
        queue_capacity: int = 1024,
        policy: str = "block",
        max_batch: int = 32,
        max_delay_s: float = 0.25,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        clock_skew_tolerance_s: float = 5.0,
        telemetry: bool = True,
        sample_every: int = 128,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        faults=None,
        registry: Optional[MetricsRegistry] = None,
        start_method: Optional[str] = None,
        early_after_chunks: Optional[int] = None,
        early_confidence: float = 0.0,
        on_provisional=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.folder = RegistryFolder(registry)
        self.shards: List[ProcShardWorker] = []
        for index in range(n_shards):
            kill_at, kill_times = (0, 0)
            if faults is not None:
                spec = faults.kill_spec_for(index)
                if spec is not None:
                    kill_at, kill_times = spec
            config = ProcShardConfig(
                index=index,
                framework=framework,
                queue_capacity=queue_capacity,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                idle_gap_s=idle_gap_s,
                min_media_chunks=min_media_chunks,
                severe_alarm_after=severe_alarm_after,
                stall_ratio_alarm=stall_ratio_alarm,
                min_sessions_for_ratio=min_sessions_for_ratio,
                clock_skew_tolerance_s=clock_skew_tolerance_s,
                telemetry=telemetry,
                sample_every=sample_every,
                kill_at_entry=kill_at,
                kill_times=kill_times,
                early_after_chunks=early_after_chunks,
                early_confidence=early_confidence,
            )
            self.shards.append(
                ProcShardWorker(
                    config=config,
                    queue=BoundedQueue(
                        capacity=queue_capacity,
                        policy=policy,
                        name=f"shard{index}",
                    ),
                    dead_letters=dead_letters,
                    on_diagnosis=on_diagnosis,
                    on_alarm=on_alarm,
                    on_provisional=on_provisional,
                    fold=self.folder.absorb,
                    faults=faults,
                    start_method=start_method,
                )
            )

    def snapshot(self) -> Dict:
        """Aggregation-tier block for ``QoEService.health()``."""
        return {
            "backend": "process",
            "registry_folds": self.folder.snapshot(),
            "seen_subscribers": sum(
                len(shard._seen_subscribers) for shard in self.shards
            ),
        }
