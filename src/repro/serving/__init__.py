"""Online QoE inference serving: shards, backpressure, batching, reload.

The paper's deployment story (§8) — "apply the trained models on
passively monitored traffic and report issues in real time" at
10M-subscriber scale — needs more than the single-threaded
:class:`~repro.realtime.monitor.RealTimeMonitor` loop: it needs ingest
buffering, explicit overload behaviour, concurrency, and model updates
without restarts.  This package is that serving substrate:

``queue``
    Bounded ingest queues with ``block`` / ``drop_oldest`` /
    ``shed_newest`` backpressure policies, fully obs-instrumented.
``shard``
    Stable hash-partitioning of subscribers over N worker threads,
    each owning its own tracker + monitor so per-subscriber order and
    health/alarm semantics are exactly the serial monitor's.
``batcher``
    Micro-batching of closed sessions so feature extraction and forest
    ``predict_proba`` run vectorized per batch instead of per session.
``models``
    Versioned model hot-reload from :mod:`repro.persistence` files
    with atomic swap; a bad file never dislodges the serving model.
``service``
    :class:`QoEService` — lifecycle (start / drain / stop), health and
    readiness snapshots, aggregated diagnoses/alarms/health.
``replay``
    Captured/simulated trace replay at a configurable speed-up
    (CLI: ``python -m repro serve-replay``).

Guarantee worth restating: for any shard count, queue capacity and
batch size (with a lossless policy), the service's diagnosis and alarm
multisets are identical to the serial monitor's on the same trace —
concurrency changes wall-clock, never results.
"""

from .batcher import MicroBatcher
from .models import ModelManager
from .queue import (
    POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueEmpty,
    QueueFull,
)
from .replay import ReplayStats, TraceReplayer, synthetic_trace
from .service import QoEService
from .shard import ShardWorker, shard_index

__all__ = [
    "POLICIES",
    "BoundedQueue",
    "QueueClosed",
    "QueueEmpty",
    "QueueFull",
    "MicroBatcher",
    "ModelManager",
    "QoEService",
    "ShardWorker",
    "shard_index",
    "ReplayStats",
    "TraceReplayer",
    "synthetic_trace",
]
