"""Online QoE inference serving: shards, backpressure, batching, healing.

The paper's deployment story (§8) — "apply the trained models on
passively monitored traffic and report issues in real time" at
10M-subscriber scale — needs more than the single-threaded
:class:`~repro.realtime.monitor.RealTimeMonitor` loop: it needs ingest
buffering, explicit overload behaviour, concurrency, model updates
without restarts, and explicit *failure* behaviour.  This package is
that serving substrate:

``queue``
    Bounded ingest queues with ``block`` / ``drop_oldest`` /
    ``shed_newest`` backpressure policies, fully obs-instrumented.
``shard``
    Stable hash-partitioning of subscribers over N worker threads,
    each owning its own tracker + monitor so per-subscriber order and
    health/alarm semantics are exactly the serial monitor's.  Workers
    are *restartable*: the thread is a replaceable vehicle over
    surviving queue/tracker/monitor state.
``procshard`` / ``router``
    The same shard, as a *process*: true multi-core diagnosis behind
    the identical ``submit()``/``health()``/``/metrics`` surface
    (``QoEService(shard_backend="process")``).  Child registries fold
    into the parent's at heartbeat and drain; the supervisor treats
    process death like a worker kill.
``framing`` / ``netshard`` / ``placement``
    The same shard, over a *socket*: length-prefixed CRC-checked
    framing, workers placed per a shard-placement map (loopback
    processes, in-process threads, or standalone ``python -m repro
    netshard-worker`` processes on other machines), partition-tolerant
    supervision (healthy / partitioned / dead with hysteresis,
    quarantine-without-restart, reconnect-and-resume under a
    deadline), and degradation to the serial monitor when every
    remote shard is circuit-open
    (``QoEService(shard_backend="socket", placement=...)``).
``batcher``
    Micro-batching of closed sessions so feature extraction and forest
    ``predict_proba`` run vectorized per batch instead of per session.
``models``
    Versioned model hot-reload from :mod:`repro.persistence` files
    with atomic swap and retry-with-backoff; a bad file never
    dislodges the serving model.
``dlq``
    Dead-letter quarantine for records the pipeline refuses to trust
    (malformed fields, regressed clocks, circuit-open backlogs).
``supervisor``
    Watchdog over the shard workers: prompt failure detection,
    bounded restarts with exponential backoff, per-shard circuit
    breakers, stalled-worker flagging.
``service``
    :class:`QoEService` — lifecycle (start / drain / stop), health,
    readiness and degradation snapshots, aggregated
    diagnoses/alarms/health.
``replay``
    Captured/simulated trace replay at a configurable speed-up, with
    optional deterministic fault injection from :mod:`repro.faults`
    (CLI: ``python -m repro serve-replay [--faults SPEC]``).

Early prediction (``QoEService(early_after_chunks=K)``, CLI
``--early-after-chunks K``) adds *provisional* diagnoses on still-open
sessions via :mod:`repro.online`: shards keep streaming per-session
feature state and emit :class:`~repro.online.early.ProvisionalDiagnosis`
objects (aggregated in ``QoEService.provisional``) whose multiset is —
like the final diagnoses — bit-identical to the serial monitor's at
the same ``K``, on both shard backends.

Guarantee worth restating: for any shard count, queue capacity and
batch size (with a lossless policy), the service's diagnosis and alarm
multisets are identical to the serial monitor's on the same trace —
concurrency changes wall-clock, never results.  Under injected faults
the guarantee narrows to the *unaffected* subscribers: records the
chaos plan never touched diagnose bit-identically to a fault-free run.
"""

from .batcher import MicroBatcher
from .dlq import DeadLetter, DeadLetterQueue
from .framing import (
    FrameAuthFailed,
    FrameClosed,
    FrameCorrupted,
    FrameError,
    FrameStream,
    FrameTooLarge,
)
from .models import ModelManager
from .netshard import (
    NetShardConfig,
    ShardConnectionLost,
    ShardUnreachable,
    SocketOpts,
    SocketShardWorker,
    run_worker,
    start_inproc_worker,
)
from .placement import ShardPlacement, SocketShardRouter
from .queue import (
    POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueEmpty,
    QueueFull,
)
from .procshard import ProcShardConfig, ProcShardWorker, ShardProcessDied
from .replay import ReplayStats, TraceReplayer, synthetic_trace
from .router import ProcessShardRouter, RegistryFolder
from .service import QoEService
from .shard import ShardWorker, shard_index
from .supervisor import SHARD_STATES, ShardSupervisor

__all__ = [
    "ProcShardConfig",
    "ProcShardWorker",
    "ProcessShardRouter",
    "RegistryFolder",
    "ShardProcessDied",
    "FrameError",
    "FrameAuthFailed",
    "FrameClosed",
    "FrameCorrupted",
    "FrameTooLarge",
    "FrameStream",
    "NetShardConfig",
    "SocketOpts",
    "SocketShardWorker",
    "ShardUnreachable",
    "ShardConnectionLost",
    "ShardPlacement",
    "SocketShardRouter",
    "SHARD_STATES",
    "run_worker",
    "start_inproc_worker",
    "POLICIES",
    "BoundedQueue",
    "QueueClosed",
    "QueueEmpty",
    "QueueFull",
    "DeadLetter",
    "DeadLetterQueue",
    "MicroBatcher",
    "ModelManager",
    "QoEService",
    "ShardSupervisor",
    "ShardWorker",
    "shard_index",
    "ReplayStats",
    "TraceReplayer",
    "synthetic_trace",
]
