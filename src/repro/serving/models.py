"""Versioned model hot-reload for the serving layer.

The deployment story (paper §8) runs frozen models for months — but
not the *same* models forever: operators retrain as players and
codecs drift, and a serving process that must restart to pick up a new
model drops its open sessions and its subscriber health state.  The
:class:`ModelManager` closes that gap:

* models come from :mod:`repro.persistence` files, so everything a
  reload admits has already passed the checksum + format validation
  there;
* the swap is atomic — a single reference assignment under a lock.
  Shard workers resolve :attr:`ModelManager.current` once per
  diagnosis batch, so every batch is scored by exactly one model
  version, never a mix;
* a failed reload (missing/corrupt/truncated file) is retried with
  exponential backoff — the classic race is an operator mid-copy over
  the model file, gone a beat later — and only after the retry budget
  keeps the current model serving, counted, not raised: an operator
  copying a new file into place must never be able to take the
  service down.

``repro_serving_model_reloads_total{status}`` counts attempts and
``repro_serving_model_version`` exposes the live version (1 = the
model the service started with, +1 per successful reload).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.framework import QoEFramework
from repro.faults.retry import retry_with_backoff
from repro.obs import get_logger, get_recorder, get_registry
from repro.persistence import load_framework

__all__ = ["ModelManager"]

_LOG = get_logger("serving.models")

_REG = get_registry()
_RELOADS = _REG.counter(
    "repro_serving_model_reloads_total",
    "Model hot-reload attempts, by outcome.",
    labelnames=("status",),
)
_VERSION = _REG.gauge(
    "repro_serving_model_version",
    "Version of the model currently serving (increments per reload).",
)


class ModelManager:
    """Owns the live :class:`QoEFramework` and swaps it atomically.

    Construct from a persistence file path (hot-reloadable) or from an
    already-fitted framework (fixed; :meth:`reload` then raises — an
    in-memory model has no source of truth to re-read).

    Parameters
    ----------
    source:
        Persistence file path or fitted :class:`QoEFramework`.
    reload_retries:
        Transient-failure retries *per reload attempt* before the
        reload is declared failed (the serving model stays).  The
        initial construction-time load is never retried — a service
        that cannot load its model at startup should fail fast.
    retry_base_delay_s:
        First retry delay; doubles per attempt (capped at 2 s).

    Attributes
    ----------
    fault_gate:
        Chaos-plan hook (see :meth:`repro.faults.FaultInjector.reload_gate`)
        invoked inside every reload's load attempt; ``None`` in
        production.  Installed by :class:`~repro.serving.service.QoEService`
        when it is built with a fault injector.
    """

    def __init__(
        self,
        source: Union[str, Path, QoEFramework],
        reload_retries: int = 2,
        retry_base_delay_s: float = 0.05,
    ) -> None:
        if reload_retries < 0:
            raise ValueError("reload_retries must be >= 0")
        self._lock = threading.Lock()
        self.reload_retries = reload_retries
        self.retry_base_delay_s = retry_base_delay_s
        self.fault_gate: Optional[Callable[[], None]] = None
        if isinstance(source, QoEFramework):
            if not source._fitted:
                raise ValueError("framework is not fitted")
            self._path: Optional[Path] = None
            self._current = source
        else:
            self._path = Path(source)
            self._current = load_framework(self._path)
        self._version = 1
        _VERSION.set(self._version)

    # ------------------------------------------------------------------

    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def version(self) -> int:
        """1 for the initial model, +1 per successful :meth:`reload`."""
        with self._lock:
            return self._version

    @property
    def current(self) -> QoEFramework:
        """The live framework (atomic read)."""
        with self._lock:
            return self._current

    @property
    def reloadable(self) -> bool:
        return self._path is not None

    def _load(self) -> QoEFramework:
        """One load attempt; the chaos gate fires first if installed."""
        if self.fault_gate is not None:
            self.fault_gate()
        return load_framework(self._path)

    def reload(self) -> bool:
        """Re-read the model file and swap it in if it validates.

        Returns ``True`` on a successful swap.  Load failures
        (missing, truncated, bad checksum, wrong format) are retried
        ``reload_retries`` times with exponential backoff — a reload
        typically races the very file copy that triggered it — and a
        reload that still fails leaves the current model untouched and
        returns ``False``: logged and counted (``status="error"``),
        never propagated into the serving loop.
        """
        if self._path is None:
            raise RuntimeError(
                "manager was built from an in-memory framework; "
                "there is no file to reload"
            )
        try:
            fresh = retry_with_backoff(
                self._load,
                retries=self.reload_retries,
                base_delay_s=self.retry_base_delay_s,
                retry_on=(ValueError, OSError),
                op="model_reload",
            )
        except (ValueError, OSError) as exc:
            _RELOADS.labels(status="error").inc()
            get_recorder().record(
                "model_reload_failed", path=str(self._path), error=str(exc)
            )
            _LOG.warning(
                "model_reload_failed", path=str(self._path), error=str(exc)
            )
            return False
        with self._lock:
            self._current = fresh
            self._version += 1
            version = self._version
        _RELOADS.labels(status="ok").inc()
        _VERSION.set(version)
        get_recorder().record(
            "model_reloaded", path=str(self._path), version=version
        )
        _LOG.info("model_reloaded", path=str(self._path), version=version)
        return True
