"""`QoEService`: the sharded, back-pressured, self-healing inference service.

This is the deployment shape the paper's §8 sketches at operator
scale: weblog entries stream in from a passive tap, and per-session
QoE diagnoses, per-subscriber health and operator alarms stream out —
continuously, concurrently, and with explicit overload *and failure*
behaviour.

Data flow::

    submit(entry)
        │  shard_index(subscriber)          ← stable CRC32 partition
        ▼
    BoundedQueue[0..N-1]                    ← block / drop_oldest / shed_newest
        │  (one worker thread per shard; ShardSupervisor watchdog
        ▼   restarts dead workers, trips per-shard circuit breakers)
    validate ──reject──▶ DeadLetterQueue    ← malformed / non-monotonic
        │
    OnlineSessionTracker  ──closed──▶  MicroBatcher  ──batch──▶
    RealTimeMonitor.diagnose_records      (health, alarms, callbacks)
                          ▲
                          └── ModelManager.current   (hot-reload boundary)

**Determinism.**  Replaying a trace through N shards yields the same
diagnosis *multiset* (and alarm multiset, and per-subscriber health)
as the serial :class:`~repro.realtime.monitor.RealTimeMonitor`:
subscribers never span shards, per-subscriber entry order is preserved
by the FIFO queues, session ids are per-subscriber (tracker), batching
cannot change per-row forest outputs, and each shard reuses the serial
monitor's own diagnosis/alarm code.  Only the interleaving *across*
subscribers differs.  Supervision does not perturb this: a fault-free
run never restarts anything, and the watchdog only reads state.

**Failure.**  A dead shard worker is detected by the supervisor's
watchdog (not at drain time), restarted up to ``max_restarts`` times
with exponential backoff — the replacement inherits the shard's queue
backlog and tracker state — and past the budget the shard's circuit
breaker opens: ``submit`` rejects its traffic, its backlog is
quarantined in the :class:`~repro.serving.dlq.DeadLetterQueue`, and
the service degrades instead of crashing.  Malformed records
(:class:`~repro.capture.weblog.MalformedRecordError`) are quarantined
per record.  All of it is visible in :meth:`health` and the
``repro_serving_*`` metric families.

**Lifecycle.**  ``start()`` → ``running`` → ``drain()`` (stop intake,
process everything queued, force-close open sessions, final alarm
sweep, join workers) → ``stopped``.  ``stop()`` is drain-then-stop and
is idempotent.  :meth:`health` returns a liveness/readiness snapshot
suitable for a ``/healthz`` endpoint.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Union

from repro.capture.weblog import WeblogEntry
from repro.core.framework import QoEFramework, SessionDiagnosis
from repro.obs import (
    SLO,
    FlightRecorder,
    PipelineTelemetry,
    SLOEngine,
    TraceContext,
    get_logger,
    get_registry,
    set_recorder,
    trace,
)
from repro.online.early import ConvergenceReport, ProvisionalDiagnosis
from repro.realtime.monitor import Alarm, SubscriberHealth

from .batcher import MicroBatcher
from .dlq import DeadLetterQueue
from .models import ModelManager
from .queue import BoundedQueue
from .shard import ShardWorker, shard_index
from .supervisor import ShardSupervisor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.faults import FaultInjector

__all__ = ["QoEService"]

_LOG = get_logger("serving.service")

_REG = get_registry()
_SHARDS = _REG.gauge(
    "repro_serving_shards",
    "Shard workers in the running QoE service.",
)
_STATE = _REG.gauge(
    "repro_serving_up",
    "1 while a QoEService is running, 0 otherwise.",
)
_DRAIN_SECONDS = _REG.histogram(
    "repro_serving_drain_seconds",
    "Wall-clock duration of QoEService.drain() calls.",
)
_REJECTED = _REG.counter(
    "repro_serving_rejected_total",
    "Submits refused because the target shard's circuit breaker is open.",
)


class QoEService:
    """Sharded online QoE inference over a live weblog stream.

    Parameters
    ----------
    models:
        A :class:`~repro.serving.models.ModelManager`, a fitted
        :class:`QoEFramework`, or a path to a persistence file.
    n_shards:
        Concurrent shard workers (>= 1).  1 is the serial monitor with
        an ingest queue in front.
    shard_backend:
        ``"thread"`` (default) runs shards as in-process worker
        threads; ``"process"`` runs each shard in its own process via
        :mod:`repro.serving.procshard` for true multi-core diagnosis;
        ``"socket"`` runs each shard behind a length-prefixed socket
        transport (:mod:`repro.serving.netshard`) placed per
        ``placement`` — loopback processes, in-process threads, or
        standalone workers on other machines.  Semantics are identical
        (same CRC32 partition, same per-subscriber order, same
        diagnosis/alarm multisets); the process and socket backends
        additionally fold per-child metric registries into this
        process's registry at heartbeat and drain.  Model hot-reload
        only reaches process/socket shards at their next restart.
    placement:
        Socket backend only: a placement spec parsed by
        :meth:`~repro.serving.placement.ShardPlacement.parse` —
        ``"local:N"`` (default, loopback worker processes),
        ``"inproc:N"`` (worker threads over loopback), or an explicit
        ``"0=host:port,1=host:port"`` map of standalone workers.
    socket_opts:
        Socket backend only: a
        :class:`~repro.serving.netshard.SocketOpts` (or kwargs dict
        for one) tuning connect deadlines, read/send timeouts and the
        unacked-buffer backpressure bound.
    queue_capacity, policy:
        Per-shard ingest bound and backpressure policy
        (see :mod:`repro.serving.queue`).
    max_batch, max_delay_s:
        Micro-batching bounds (see :mod:`repro.serving.batcher`).
    idle_gap_s, min_media_chunks:
        Tracker parameters, as in
        :class:`~repro.realtime.tracker.OnlineSessionTracker`.
    severe_alarm_after, stall_ratio_alarm, min_sessions_for_ratio:
        Alarm rules, as in :class:`~repro.realtime.monitor.RealTimeMonitor`.
    on_diagnosis, on_alarm:
        Callbacks, forwarded to every shard's monitor (error-isolated
        there).  Note they run on shard threads.
    max_restarts, restart_backoff_s, supervisor_poll_s, heartbeat_timeout_s:
        Supervision policy (see
        :class:`~repro.serving.supervisor.ShardSupervisor`).
    partition_enter_ticks, partition_exit_ticks:
        Hysteresis on the typed shard health state: consecutive stale
        supervisor polls to enter *partitioned*, consecutive fresh
        ones to exit.
    dead_letter_capacity:
        Bound on quarantined records retained for inspection.
    clock_skew_tolerance_s:
        Per-subscriber timestamp regression the shards tolerate before
        quarantining the record as a skewed-clock artifact.
    faults:
        Optional :class:`~repro.faults.FaultInjector` — installs the
        chaos plan's worker-kill hook on every shard and its reload
        gate on the model manager.  ``None`` (production) adds a single
        ``is None`` branch per entry.
    telemetry:
        Per-record trace propagation.  ``True`` (default) builds a
        :class:`~repro.obs.pipeline.PipelineTelemetry`; pass an
        instance to control sampling, or ``False`` to run the PR-5
        hot path with no per-record instrumentation at all.
    slos:
        SLO spec strings (see :mod:`repro.obs.slo`) or parsed
        :class:`~repro.obs.slo.SLO` objects, evaluated over tumbling
        windows while the service runs.  Requires telemetry.
    postmortem_dir:
        Directory for the flight recorder's JSON postmortems (written
        when a circuit opens, a shard dies or drain times out).
        ``None`` keeps the event ring but writes nothing.
    early_after_chunks, early_confidence, on_provisional:
        Early prediction (see :mod:`repro.online`): when
        ``early_after_chunks`` is set, every shard emits provisional
        diagnoses on open sessions once they reach that many media
        chunks, filtered to combined confidence >=
        ``early_confidence``; they aggregate in :attr:`provisional`
        and the convergence report in :meth:`early_report`.  ``None``
        (default) leaves the per-record hot path untouched.
    """

    def __init__(
        self,
        models: Union[ModelManager, QoEFramework, str],
        n_shards: int = 4,
        shard_backend: str = "thread",
        queue_capacity: int = 1024,
        policy: str = "block",
        max_batch: int = 32,
        max_delay_s: float = 0.25,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.05,
        supervisor_poll_s: float = 0.02,
        heartbeat_timeout_s: float = 5.0,
        partition_enter_ticks: int = 3,
        partition_exit_ticks: int = 2,
        placement: Optional[str] = None,
        socket_opts=None,
        dead_letter_capacity: int = 1024,
        clock_skew_tolerance_s: float = 5.0,
        faults: Optional["FaultInjector"] = None,
        telemetry: Union[bool, PipelineTelemetry] = True,
        slos: Optional[Iterable[Union[str, SLO]]] = None,
        postmortem_dir: Optional[str] = None,
        early_after_chunks: Optional[int] = None,
        early_confidence: float = 0.0,
        on_provisional: Optional[
            Callable[[ProvisionalDiagnosis], None]
        ] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if shard_backend not in ("thread", "process", "socket"):
            raise ValueError(
                f"unknown shard_backend {shard_backend!r}; "
                "use 'thread', 'process' or 'socket'"
            )
        if placement is not None and shard_backend != "socket":
            raise ValueError("placement is only meaningful with shard_backend='socket'")
        self.shard_backend = shard_backend
        self.models = (
            models if isinstance(models, ModelManager) else ModelManager(models)
        )
        self.faults = faults
        if faults is not None:
            self.models.fault_gate = faults.reload_gate
        self.n_shards = n_shards
        self.state = "created"
        self.submitted = 0
        self.shed = 0
        self.rejected = 0
        self.dead_letters = DeadLetterQueue(capacity=dead_letter_capacity)
        if isinstance(telemetry, PipelineTelemetry):
            self.telemetry: Optional[PipelineTelemetry] = telemetry
        elif telemetry:
            self.telemetry = PipelineTelemetry()
        else:
            self.telemetry = None
        slo_specs = list(slos) if slos is not None else []
        if slo_specs and self.telemetry is None:
            raise ValueError("SLO evaluation requires telemetry enabled")
        self.slo_engine: Optional[SLOEngine] = (
            SLOEngine(
                slo_specs,
                self.telemetry,
                processed=self._entries_processed_total,
                failed=lambda: float(self.dead_letters.quarantined),
            )
            if slo_specs
            else None
        )
        self.recorder = FlightRecorder(postmortem_dir=postmortem_dir)
        self.router = None
        #: Knobs the degradation ladder needs to build a serial
        #: fallback worker after every remote shard circuit-opens.
        self._shard_knobs = {
            "queue_capacity": queue_capacity,
            "max_batch": max_batch,
            "max_delay_s": max_delay_s,
            "idle_gap_s": idle_gap_s,
            "min_media_chunks": min_media_chunks,
            "severe_alarm_after": severe_alarm_after,
            "stall_ratio_alarm": stall_ratio_alarm,
            "min_sessions_for_ratio": min_sessions_for_ratio,
            "clock_skew_tolerance_s": clock_skew_tolerance_s,
            "on_diagnosis": on_diagnosis,
            "on_alarm": on_alarm,
            "on_provisional": on_provisional,
            "early_after_chunks": early_after_chunks,
            "early_confidence": early_confidence,
        }
        self._fallback: Optional[ShardWorker] = None
        self._fallback_lock = threading.Lock()
        if shard_backend == "socket":
            # Local import: pulls in the socket transport stack the
            # thread backend never needs.
            from .netshard import SocketOpts
            from .placement import ShardPlacement, SocketShardRouter

            parsed = ShardPlacement.parse(
                placement if placement is not None else f"local:{n_shards}",
                n_shards,
            )
            if socket_opts is None:
                opts = SocketOpts()
            elif isinstance(socket_opts, SocketOpts):
                opts = socket_opts
            else:
                opts = SocketOpts(**socket_opts)
            self.router = SocketShardRouter(
                placement=parsed,
                framework=self.models.current,
                dead_letters=self.dead_letters,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                idle_gap_s=idle_gap_s,
                min_media_chunks=min_media_chunks,
                severe_alarm_after=severe_alarm_after,
                stall_ratio_alarm=stall_ratio_alarm,
                min_sessions_for_ratio=min_sessions_for_ratio,
                clock_skew_tolerance_s=clock_skew_tolerance_s,
                telemetry=self.telemetry is not None,
                sample_every=(
                    self.telemetry.sample_every
                    if self.telemetry is not None
                    else 128
                ),
                on_diagnosis=on_diagnosis,
                on_alarm=on_alarm,
                faults=faults,
                early_after_chunks=early_after_chunks,
                early_confidence=early_confidence,
                on_provisional=on_provisional,
                socket_opts=opts,
            )
            self._shards: List[ShardWorker] = self.router.shards
        elif shard_backend == "process":
            # Local import: the router pulls in multiprocessing-backed
            # shards the thread backend never needs.
            from .router import ProcessShardRouter

            self.router = ProcessShardRouter(
                n_shards=n_shards,
                framework=self.models.current,
                dead_letters=self.dead_letters,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                idle_gap_s=idle_gap_s,
                min_media_chunks=min_media_chunks,
                severe_alarm_after=severe_alarm_after,
                stall_ratio_alarm=stall_ratio_alarm,
                min_sessions_for_ratio=min_sessions_for_ratio,
                clock_skew_tolerance_s=clock_skew_tolerance_s,
                telemetry=self.telemetry is not None,
                sample_every=(
                    self.telemetry.sample_every
                    if self.telemetry is not None
                    else 128
                ),
                on_diagnosis=on_diagnosis,
                on_alarm=on_alarm,
                faults=faults,
                early_after_chunks=early_after_chunks,
                early_confidence=early_confidence,
                on_provisional=on_provisional,
            )
            self._shards: List[ShardWorker] = self.router.shards
        else:
            self._shards = [
                ShardWorker(
                    index=i,
                    models=self.models,
                    queue=BoundedQueue(
                        capacity=queue_capacity, policy=policy, name=f"shard{i}"
                    ),
                    batcher=MicroBatcher(
                        max_batch=max_batch, max_delay_s=max_delay_s
                    ),
                    idle_gap_s=idle_gap_s,
                    min_media_chunks=min_media_chunks,
                    severe_alarm_after=severe_alarm_after,
                    stall_ratio_alarm=stall_ratio_alarm,
                    min_sessions_for_ratio=min_sessions_for_ratio,
                    on_diagnosis=on_diagnosis,
                    on_alarm=on_alarm,
                    dead_letters=self.dead_letters,
                    clock_skew_tolerance_s=clock_skew_tolerance_s,
                    fault_hook=(
                        faults.shard_fault_hook if faults is not None else None
                    ),
                    telemetry=(
                        self.telemetry.for_shard(i)
                        if self.telemetry is not None
                        else None
                    ),
                    early_after_chunks=early_after_chunks,
                    early_confidence=early_confidence,
                    on_provisional=on_provisional,
                )
                for i in range(n_shards)
            ]
        self.supervisor = ShardSupervisor(
            self._shards,
            self.dead_letters,
            max_restarts=max_restarts,
            backoff_base_s=restart_backoff_s,
            poll_interval_s=supervisor_poll_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            partition_enter_ticks=partition_enter_ticks,
            partition_exit_ticks=partition_exit_ticks,
            faults=faults,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _entries_processed_total(self) -> float:
        return float(sum(s.entries_processed for s in self._all_shards()))

    def _register_recorder_providers(self) -> None:
        """Snapshot providers included in every postmortem."""
        if self.telemetry is not None:
            self.recorder.add_provider(
                "stages", self.telemetry.stage_snapshot
            )
        if self.slo_engine is not None:
            self.recorder.add_provider(
                "slo",
                lambda: {
                    "ok": self.slo_engine.ok,
                    "objectives": self.slo_engine.snapshot(),
                },
            )
        self.recorder.add_provider("dead_letter", self.dead_letters.snapshot)
        self.recorder.add_provider(
            "service",
            lambda: {
                "state": self.state,
                "submitted": self.submitted,
                "shed": self.shed,
                "rejected": self.rejected,
                "restarts": self.supervisor.total_restarts,
                "open_circuits": self.supervisor.open_circuits,
                "stalled": self.supervisor.stalled_shards,
                "shard_states": self.supervisor.shard_states,
            },
        )

    def start(self) -> "QoEService":
        """Spin up the shard workers and their watchdog; become ready."""
        if self.state != "created":
            raise RuntimeError(f"cannot start a {self.state} service")
        # Install this service's flight recorder as the process default
        # so deep modules (DLQ, batcher, models, faults) record into it.
        self._register_recorder_providers()
        set_recorder(self.recorder)
        if self.slo_engine is not None:
            self.slo_engine.start()
        for shard in self._shards:
            shard.start()
        self.supervisor.start()
        self.state = "running"
        self.recorder.record(
            "service_started",
            shards=self.n_shards,
            backend=self.shard_backend,
            model_version=self.models.version,
        )
        _SHARDS.set(self.n_shards)
        _STATE.set(1)
        _LOG.info(
            "service_started",
            shards=self.n_shards,
            backend=self.shard_backend,
            model_version=self.models.version,
        )
        return self

    def submit(self, entry: WeblogEntry) -> bool:
        """Route one entry to its subscriber's shard.

        Returns ``False`` if the entry was shed by backpressure
        (``shed_newest`` policy) or *rejected* because the target
        shard's circuit breaker is open (a dead, non-restartable shard
        must not accumulate a queue nobody will ever drain); ``True``
        otherwise.  ``drop_oldest`` admissions return ``True`` even
        when they evicted — the loss is visible in the queue's drop
        counter.  A shard that is dead but still within its restart
        budget keeps accepting: its queue survives the restart.
        """
        if self.state != "running":
            raise RuntimeError(f"cannot submit to a {self.state} service")
        index = shard_index(entry.subscriber_id, self.n_shards)
        seq = self.submitted
        self.submitted += 1
        # Telemetry is inlined (direct TraceContext construction, direct
        # buffer append instead of trace_context()/note_submit() calls):
        # submit runs once per entry and the method-call overhead alone
        # breaks the <5% gate on a single core.
        tel = self.telemetry
        ctx = None
        if tel is not None:
            ctx = TraceContext(
                entry.subscriber_id, seq, seq % tel.sample_every == 0
            )
            # Attribute-attach keeps queue items and shard code shapes
            # unchanged; the shard reads the context back on dequeue.
            entry.__dict__["_trace_ctx"] = ctx
            if ctx.sampled:
                self.recorder.record(
                    "submit",
                    trace_id=ctx.trace_id,
                    subscriber=entry.subscriber_id,
                    shard=index,
                )
            if self.slo_engine is not None and seq % 256 == 0:
                self.slo_engine.maybe_roll()
            ctx.t_submit = time.perf_counter()
        if self.supervisor.circuit_open(index):
            if (
                self.shard_backend == "socket"
                and len(self.supervisor.open_circuits) >= self.n_shards
            ):
                # Degradation ladder, last rung: every remote shard is
                # circuit-open (the network took them all), but this
                # process still holds the model.  A serial in-process
                # worker is slower than the fleet and strictly better
                # than refusing the tap.
                self._ensure_fallback().queue.put(entry)
                return True
            self.rejected += 1
            _REJECTED.inc()
            return False
        if ctx is not None:
            # Stamp *before* the put: the shard may dequeue the entry
            # the instant it lands, and a blocked put is queue time.
            ctx.t_enqueued = time.perf_counter()
        accepted = self._shards[index].queue.put(entry)
        if ctx is not None:
            duration = ctx.t_enqueued - ctx.t_submit
            if ctx.stages is not None:
                ctx.stages["submit"] = duration
            with tel._submit_lock:
                buf = tel._submit_buf
                buf.append(duration)
                full = len(buf) >= 512
            if full:
                tel.flush()
        if not accepted:
            self.shed += 1
        return accepted

    def _ensure_fallback(self) -> ShardWorker:
        """Lazily start the serial fallback monitor (socket backend).

        One thread-backed :class:`ShardWorker` — the serial monitor
        with a queue in front — that absorbs *all* traffic once every
        remote shard is gone.  Routing every subscriber to one worker
        preserves per-subscriber order from the moment of failover, so
        sessions that begin after the collapse are still diagnosed
        exactly as the serial monitor would.
        """
        with self._fallback_lock:
            if self._fallback is None:
                knobs = self._shard_knobs
                worker = ShardWorker(
                    index=self.n_shards,
                    models=self.models,
                    queue=BoundedQueue(
                        capacity=knobs["queue_capacity"],
                        policy="block",
                        name="fallback",
                    ),
                    batcher=MicroBatcher(
                        max_batch=knobs["max_batch"],
                        max_delay_s=knobs["max_delay_s"],
                    ),
                    idle_gap_s=knobs["idle_gap_s"],
                    min_media_chunks=knobs["min_media_chunks"],
                    severe_alarm_after=knobs["severe_alarm_after"],
                    stall_ratio_alarm=knobs["stall_ratio_alarm"],
                    min_sessions_for_ratio=knobs["min_sessions_for_ratio"],
                    on_diagnosis=knobs["on_diagnosis"],
                    on_alarm=knobs["on_alarm"],
                    dead_letters=self.dead_letters,
                    clock_skew_tolerance_s=knobs["clock_skew_tolerance_s"],
                    telemetry=(
                        self.telemetry.for_shard(self.n_shards)
                        if self.telemetry is not None
                        else None
                    ),
                    early_after_chunks=knobs["early_after_chunks"],
                    early_confidence=knobs["early_confidence"],
                    on_provisional=knobs["on_provisional"],
                )
                worker.start()
                self._fallback = worker
                self.recorder.record(
                    "serial_fallback_engaged", open_circuits=self.n_shards
                )
                _LOG.error(
                    "serial_fallback_engaged",
                    open_circuits=self.n_shards,
                    detail="all socket shards circuit-open; "
                    "degrading to the in-process serial monitor",
                )
        return self._fallback

    def _all_shards(self) -> List[ShardWorker]:
        if self._fallback is not None:
            return list(self._shards) + [self._fallback]
        return self._shards

    def submit_many(self, entries: Iterable[WeblogEntry]) -> int:
        """Submit a time-ordered entry stream; returns how many were accepted."""
        accepted = 0
        for entry in entries:
            accepted += self.submit(entry)
        return accepted

    def drain(self) -> List[SessionDiagnosis]:
        """Graceful shutdown: flush every shard, join every worker.

        Closes the ingest queues (queued entries are still processed),
        then lets the supervisor finish its job synchronously: a shard
        found dead mid-restart is revived immediately (no backoff —
        intake has ceased) so its backlog still drains; a shard that
        exhausts its restart budget trips its circuit breaker and its
        backlog is quarantined in the dead-letter queue.  Each
        surviving worker force-closes its open sessions, diagnoses its
        final batches and runs the final alarm sweep.  Returns *all*
        diagnoses the service ever produced.  Supervised failures
        never raise here — they degrade :meth:`health` instead of
        crashing the caller.
        """
        if self.state == "stopped":
            return self.diagnoses
        if self.state != "running":
            raise RuntimeError(f"cannot drain a {self.state} service")
        self.state = "draining"
        started = time.perf_counter()
        with trace("serving.drain") as span:
            self.supervisor.stop()
            for shard in self._shards:
                shard.queue.close()
            self.supervisor.ensure_drained()
            for shard in self._shards:
                if not self.supervisor.circuit_open(shard.index):
                    shard.join()
            if self._fallback is not None:
                self._fallback.queue.close()
                self._fallback.join()
            span.add(
                "diagnoses",
                sum(len(s.diagnoses) for s in self._all_shards()),
            )
        self.state = "stopped"
        _STATE.set(0)
        _SHARDS.set(0)
        _DRAIN_SECONDS.observe(time.perf_counter() - started)
        if self.telemetry is not None:
            self.telemetry.flush()
        if self.slo_engine is not None:
            # Close the in-flight windows so short replays still
            # evaluate every objective at least once.
            self.slo_engine.finalize()
        self.recorder.record(
            "service_drained",
            diagnoses=len(self.diagnoses),
            alarms=len(self.alarms),
            restarts=self.supervisor.total_restarts,
            dead_letter=self.dead_letters.quarantined,
        )
        _LOG.info(
            "service_drained",
            diagnoses=len(self.diagnoses),
            alarms=len(self.alarms),
            shed=self.shed,
            rejected=self.rejected,
            restarts=self.supervisor.total_restarts,
            dead_letter=self.dead_letters.quarantined,
            degraded=self.degraded,
        )
        return self.diagnoses

    def stop(self) -> None:
        """Drain if needed; idempotent."""
        if self.state == "running":
            self.drain()

    def __enter__(self) -> "QoEService":
        if self.state == "created":
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Aggregated results
    # ------------------------------------------------------------------

    @property
    def diagnoses(self) -> List[SessionDiagnosis]:
        """All diagnoses across shards (stable within a subscriber)."""
        out: List[SessionDiagnosis] = []
        for shard in self._all_shards():
            out.extend(shard.diagnoses)
        return out

    @property
    def alarms(self) -> List[Alarm]:
        out: List[Alarm] = []
        for shard in self._all_shards():
            out.extend(shard.alarms)
        return out

    @property
    def provisional(self) -> List[ProvisionalDiagnosis]:
        """All provisional (early) diagnoses across shards."""
        out: List[ProvisionalDiagnosis] = []
        for shard in self._all_shards():
            out.extend(shard.provisional)
        return out

    def early_report(self) -> Optional[ConvergenceReport]:
        """Merged provisional-vs-final convergence (None if early is off)."""
        merged: Optional[ConvergenceReport] = None
        for shard in self._all_shards():
            report = shard.early_report()
            if report is None:
                continue
            merged = report if merged is None else merged.merge(report)
        return merged

    @property
    def health_by_subscriber(self) -> Dict[str, SubscriberHealth]:
        """Merged per-subscriber health (subscribers never span shards)."""
        merged: Dict[str, SubscriberHealth] = {}
        for shard in self._all_shards():
            merged.update(shard.monitor.health)
        return merged

    @property
    def callback_errors(self) -> int:
        return sum(
            shard.monitor.callback_errors for shard in self._all_shards()
        )

    # ------------------------------------------------------------------
    # Health / readiness
    # ------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """True while the service accepts traffic on every shard.

        A shard that is dead but restartable does not clear readiness —
        its queue keeps buffering and the supervisor is already on it;
        an open circuit does (that partition of subscribers is refused).
        """
        return self.state == "running" and not self.supervisor.open_circuits

    @property
    def degraded(self) -> bool:
        """True once any shard is non-restartable or wedged."""
        return self.supervisor.degraded

    def health(self) -> Dict:
        """Liveness/readiness snapshot (shape suitable for ``/healthz``).

        Best-effort under concurrency: counters may lag by a few
        entries while workers run; exact totals are available after
        :meth:`drain`.
        """
        out = {
            "state": self.state,
            "backend": self.shard_backend,
            "ready": self.ready,
            "degraded": self.degraded,
            "model_version": self.models.version,
            "model_reloadable": self.models.reloadable,
            "submitted": self.submitted,
            "shed": self.shed,
            "rejected": self.rejected,
            "restarts": self.supervisor.total_restarts,
            "dead_letter": self.dead_letters.snapshot(),
            "shards": [
                {
                    "index": shard.index,
                    "alive": shard.alive,
                    "state": shard.state,
                    "restarts": shard.restarts,
                    "circuit_open": self.supervisor.circuit_open(shard.index),
                    "stalled": shard.index in self.supervisor.stalled_shards,
                    "health_state": self.supervisor.shard_state(shard.index),
                    "queue_depth": shard.queue.depth,
                    "queue_dropped": shard.queue.dropped,
                    "entries_processed": shard.entries_processed,
                    "quarantined": shard.quarantined,
                    "open_sessions": shard.monitor.tracker.open_sessions,
                    "pending_batch": shard.batcher.pending,
                    "diagnoses": len(shard.diagnoses),
                    "alarms": len(shard.alarms),
                    "provisional": len(shard.provisional),
                }
                for shard in self._shards
            ],
        }
        if self._fallback is not None:
            out["serial_fallback"] = {
                "engaged": True,
                "entries_processed": self._fallback.entries_processed,
                "diagnoses": len(self._fallback.diagnoses),
                "queue_depth": self._fallback.queue.depth,
            }
        if self.router is not None:
            out["router"] = self.router.snapshot()
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.stage_snapshot()
        if self.slo_engine is not None:
            out["slo"] = {
                "ok": self.slo_engine.ok,
                "objectives": self.slo_engine.snapshot(),
            }
        return out
