"""Dead-letter quarantine for records the pipeline refuses to trust.

A garbled weblog record used to have exactly two fates: crash the
shard worker mid-stream, or silently poison a tracker session (a NaN
timestamp propagates into the feature matrix and every downstream
diagnosis of that session).  The dead-letter queue gives it a third:
*quarantine* — the record is set aside with the reason it was
rejected, counted, capacity-bounded, and available for offline
inspection, while the subscriber's remaining healthy entries keep
flowing.

Reasons in use today:

``malformed``
    Failed :meth:`~repro.capture.weblog.WeblogEntry.validate`
    (negative sizes, NaN timestamps/metrics).
``non_monotonic``
    Timestamp regressed beyond the shard's clock-skew tolerance —
    a skewed or replayed collector.
``circuit_open``
    Queued on a shard whose circuit breaker tripped; the entries had
    nowhere left to go and are preserved here instead of leaking.
``partitioned``
    Backlog shed from a socket shard the supervisor classified
    *partitioned* (heartbeat stale, connection alive): the shard keeps
    running — no restart — but entries it has not acknowledged stop
    piling up in parent memory.

Bounded like everything else in the serving layer: past ``capacity``
the *oldest* quarantined record is evicted (newest evidence is worth
most when debugging a live incident) and the eviction is counted.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

from repro.capture.weblog import WeblogEntry
from repro.obs import get_logger, get_recorder, get_registry

__all__ = ["DeadLetter", "DeadLetterQueue"]

_LOG = get_logger("serving.dlq")

_REG = get_registry()
_QUARANTINED = _REG.counter(
    "repro_serving_dead_letter_total",
    "Records quarantined in the dead-letter queue, by rejection reason.",
    labelnames=("reason",),
)
_EVICTED = _REG.counter(
    "repro_serving_dead_letter_evicted_total",
    "Quarantined records evicted once the dead-letter queue filled.",
)
_DEPTH = _REG.gauge(
    "repro_serving_dead_letter_depth",
    "Records currently held in the dead-letter queue.",
)


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined record and why it was rejected."""

    entry: WeblogEntry
    reason: str
    shard: int
    detail: str = ""


@dataclass
class _Stats:
    quarantined: int = 0
    evicted: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)


class DeadLetterQueue:
    """Thread-safe, bounded quarantine for rejected weblog records.

    Parameters
    ----------
    capacity:
        Maximum records held (>= 1).  Totals keep counting past the
        bound; only the stored evidence is ring-buffered.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("dead-letter capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: Deque[DeadLetter] = deque()
        self._stats = _Stats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def quarantined(self) -> int:
        """Total records ever quarantined (monotonic)."""
        with self._lock:
            return self._stats.quarantined

    @property
    def evicted(self) -> int:
        with self._lock:
            return self._stats.evicted

    @property
    def by_reason(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats.by_reason)

    def put(
        self, entry: WeblogEntry, reason: str, shard: int, detail: str = ""
    ) -> DeadLetter:
        """Quarantine one record; evicts the oldest letter when full."""
        letter = DeadLetter(entry=entry, reason=reason, shard=shard, detail=detail)
        with self._lock:
            if len(self._items) >= self.capacity:
                self._items.popleft()
                self._stats.evicted += 1
                _EVICTED.inc()
            self._items.append(letter)
            self._stats.quarantined += 1
            self._stats.by_reason[reason] = (
                self._stats.by_reason.get(reason, 0) + 1
            )
            depth = len(self._items)
        _QUARANTINED.labels(reason=reason).inc()
        _DEPTH.set(depth)
        get_recorder().record(
            "record_quarantined",
            reason=reason,
            shard=shard,
            subscriber=entry.subscriber_id,
        )
        _LOG.warning(
            "record_quarantined",
            reason=reason,
            shard=shard,
            subscriber=entry.subscriber_id,
            detail=detail or None,
        )
        return letter

    def stats(self) -> Dict:
        """Counter-style rollup: totals plus per-reason counts.

        The one-scrape answer to "*why* are records being dropped" —
        a partition-driven quarantine (``partitioned``) is
        distinguishable from validation drops (``malformed``) without
        walking :meth:`items`.
        """
        with self._lock:
            return {
                "quarantined": self._stats.quarantined,
                "evicted": self._stats.evicted,
                "by_reason": dict(self._stats.by_reason),
            }

    def items(self) -> List[DeadLetter]:
        """Snapshot of the currently held letters, oldest first."""
        with self._lock:
            return list(self._items)

    def snapshot(self) -> Dict:
        """Health-endpoint shape: totals, depth, per-reason counts."""
        with self._lock:
            return {
                "depth": len(self._items),
                "capacity": self.capacity,
                "quarantined": self._stats.quarantined,
                "evicted": self._stats.evicted,
                "by_reason": dict(self._stats.by_reason),
            }
