"""Bounded ingest queues with selectable backpressure policies.

An online inference service sits between an unbounded producer (the
packet tap) and a finite consumer (the shard workers).  The queue in
between must have a *policy* for the moment it fills, and the right one
depends on the deployment:

``block``
    Lossless: the producer waits for space.  Right for replay and for
    upstream taps that can themselves buffer.  Invariant: every
    accepted entry is eventually consumed — nothing is dropped.
``drop_oldest``
    Bounded staleness: evict the oldest queued entry to admit the new
    one.  Right for live monitoring where a fresh entry is worth more
    than a stale one.  Invariant: depth never exceeds capacity and the
    newest entries survive.
``shed_newest``
    Bounded work: reject the new entry outright (``put`` returns
    ``False``).  Right when admission control should push loss to the
    edge.  Invariant: depth never exceeds capacity and queued entries
    are never evicted.

Every enqueue, drop and the live depth are instrumented through
:mod:`repro.obs` (``repro_serving_queue_*``), labelled by queue name,
so overload is visible on the Prometheus endpoint before it becomes a
diagnosis gap.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.obs import get_registry

__all__ = [
    "POLICIES",
    "QueueClosed",
    "QueueFull",
    "QueueEmpty",
    "BoundedQueue",
]

POLICIES = ("block", "drop_oldest", "shed_newest")

_REG = get_registry()
_ENQUEUED = _REG.counter(
    "repro_serving_queue_enqueued_total",
    "Entries accepted into a serving ingest queue.",
    labelnames=("queue",),
)
_DROPPED = _REG.counter(
    "repro_serving_queue_dropped_total",
    "Entries lost to backpressure, by queue and policy.",
    labelnames=("queue", "policy"),
)
_DEPTH = _REG.gauge(
    "repro_serving_queue_depth",
    "Current depth of a serving ingest queue.",
    labelnames=("queue",),
)


class QueueClosed(Exception):
    """The queue was closed; no further puts, and gets have drained it."""


class QueueFull(Exception):
    """A ``block``-policy put timed out waiting for space."""


class QueueEmpty(Exception):
    """A get timed out with no entry available."""


class BoundedQueue:
    """Thread-safe bounded FIFO with an explicit overflow policy.

    Parameters
    ----------
    capacity:
        Maximum queued entries (>= 1).
    policy:
        One of :data:`POLICIES`; see the module docstring.
    name:
        Label for the observability series (e.g. ``"shard3"``).
    """

    def __init__(
        self, capacity: int, policy: str = "block", name: str = "default"
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; use one of {POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self.name = name
        self._items: Deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: Instance-level mirrors of the obs counters, so tests and
        #: health snapshots need no registry delta arithmetic.
        self.enqueued = 0
        self.dropped = 0
        self._depth_gauge = _DEPTH.labels(queue=name)
        self._enqueued_counter = _ENQUEUED.labels(queue=name)
        self._dropped_counter = _DROPPED.labels(queue=name, policy=policy)

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def _admit(self, item) -> None:
        # Caller holds the lock.
        self._items.append(item)
        self.enqueued += 1
        self._enqueued_counter.inc()
        self._depth_gauge.set(len(self._items))
        # notify_all, not notify: producers and consumers share one
        # condition, so a single wakeup could land on the wrong side
        # and strand a blocked peer.
        self._cond.notify_all()

    def put(self, item, timeout: Optional[float] = None) -> bool:
        """Enqueue one entry under the configured policy.

        Returns ``True`` if the entry was admitted, ``False`` if it was
        shed (``shed_newest`` only).  Raises :class:`QueueClosed` after
        :meth:`close`, and :class:`QueueFull` if a ``block`` put times
        out (``timeout=None`` blocks indefinitely).
        """
        with self._cond:
            if self._closed:
                raise QueueClosed(f"queue {self.name!r} is closed")
            if len(self._items) < self.capacity:
                self._admit(item)
                return True
            if self.policy == "shed_newest":
                self.dropped += 1
                self._dropped_counter.inc()
                return False
            if self.policy == "drop_oldest":
                self._items.popleft()
                self.dropped += 1
                self._dropped_counter.inc()
                self._admit(item)
                return True
            # block
            admitted = self._cond.wait_for(
                lambda: self._closed or len(self._items) < self.capacity,
                timeout=timeout,
            )
            if self._closed:
                raise QueueClosed(f"queue {self.name!r} is closed")
            if not admitted:
                raise QueueFull(
                    f"queue {self.name!r} full after {timeout}s (block policy)"
                )
            self._admit(item)
            return True

    def get(self, timeout: Optional[float] = None):
        """Dequeue the oldest entry.

        Blocks up to ``timeout`` seconds (``None`` = forever).  Raises
        :class:`QueueEmpty` on timeout and :class:`QueueClosed` once the
        queue is closed *and* fully drained — the consumer's signal to
        shut down without losing queued entries.
        """
        with self._cond:
            ready = self._cond.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            )
            if self._items:
                item = self._items.popleft()
                self._depth_gauge.set(len(self._items))
                self._cond.notify_all()
                return item
            if self._closed:
                raise QueueClosed(f"queue {self.name!r} is closed and drained")
            assert not ready
            raise QueueEmpty(f"queue {self.name!r}: nothing within {timeout}s")

    def drain_remaining(self) -> list:
        """Atomically remove and return everything still queued.

        The circuit-breaker path: when a shard is declared
        non-restartable its queue has entries nobody will ever consume.
        They are handed back (the supervisor quarantines them in the
        dead-letter queue) instead of leaking — and blocked ``block``
        -policy producers are released by the space this frees.
        """
        with self._cond:
            items = list(self._items)
            self._items.clear()
            self._depth_gauge.set(0)
            self._cond.notify_all()
        return items

    def close(self) -> None:
        """Refuse further puts; queued entries remain gettable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
