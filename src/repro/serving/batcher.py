"""Micro-batching of closed sessions before diagnosis.

``QoEFramework.diagnose`` is vectorized over its record list: the
feature matrix is built once and every tree of the forests traverses
all rows in one numpy pass.  The serial monitor wastes that — sessions
close one at a time, so each diagnosis call carries one row through a
40-tree ensemble plus span/metric overhead.  The micro-batcher
accumulates closed :class:`~repro.datasets.schema.SessionRecord`\\ s and
releases them in batches, bounded two ways:

* **size** — a full batch (``max_batch`` records) is released
  immediately;
* **latency** — a partial batch is released once its *oldest* record
  has waited ``max_delay_s``, so a quiet shard still diagnoses promptly.

Batching is invisible in the results: per-row forest predictions are
independent of batch composition, so any batching of an ordered record
stream yields the same diagnoses (``repro.serving.service`` leans on
this for its serial-equivalence guarantee; forests with ``n_jobs > 1``
additionally fan each batched predict out over the PR-2 worker pool).

The batcher is single-consumer and not thread-safe by itself — each
shard worker owns one.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.datasets.schema import SessionRecord
from repro.obs import get_recorder, get_registry

__all__ = ["MicroBatcher"]

_REG = get_registry()
_BATCHES = _REG.counter(
    "repro_serving_batches_total",
    "Diagnosis batches released by the micro-batcher, by trigger.",
    labelnames=("reason",),
)
_BATCH_SIZE = _REG.histogram(
    "repro_serving_batch_size",
    "Sessions per released diagnosis batch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)


class MicroBatcher:
    """Accumulate session records; release size- or deadline-bounded batches.

    Parameters
    ----------
    max_batch:
        Records per batch (>= 1).  1 degenerates to per-session
        diagnosis, i.e. exactly the serial monitor's behaviour.
    max_delay_s:
        Longest a record may sit in a partial batch before it is
        released anyway.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_delay_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._clock = clock
        self._pending: List[SessionRecord] = []
        self._oldest_at: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _release(self, batch: List[SessionRecord], reason: str) -> List[SessionRecord]:
        _BATCHES.labels(reason=reason).inc()
        _BATCH_SIZE.observe(len(batch))
        get_recorder().record("batch_released", size=len(batch), reason=reason)
        return batch

    def add(self, records: Sequence[SessionRecord]) -> List[List[SessionRecord]]:
        """Queue freshly closed records; return any now-full batches.

        Order is preserved: records leave in exactly the order they
        entered, which is what keeps per-subscriber diagnosis order
        identical to the serial monitor's.
        """
        ready: List[List[SessionRecord]] = []
        for record in records:
            if not self._pending:
                self._oldest_at = self._clock()
            self._pending.append(record)
            if len(self._pending) >= self.max_batch:
                ready.append(self._release(self._pending, "size"))
                self._pending = []
                self._oldest_at = None
        return ready

    def seconds_until_due(self, now: Optional[float] = None) -> Optional[float]:
        """Time until the pending partial batch must be released.

        ``None`` when nothing is pending; 0 when already overdue.  The
        shard worker uses this as its queue-poll timeout so deadline
        flushes happen without a dedicated timer thread.
        """
        if self._oldest_at is None:
            return None
        now = self._clock() if now is None else now
        return max(0.0, self._oldest_at + self.max_delay_s - now)

    def take_due(self, now: Optional[float] = None) -> Optional[List[SessionRecord]]:
        """The pending batch, if its deadline has passed (else ``None``)."""
        due = self.seconds_until_due(now)
        if due is None or due > 0:
            return None
        batch, self._pending, self._oldest_at = self._pending, [], None
        return self._release(batch, "deadline")

    def flush(self) -> List[SessionRecord]:
        """Everything pending, regardless of deadline (drain path)."""
        if not self._pending:
            return []
        batch, self._pending, self._oldest_at = self._pending, [], None
        return self._release(batch, "drain")
