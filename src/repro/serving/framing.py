"""Length-prefixed, CRC-checked socket framing for shard transport.

The process backend's pipe protocol gets its ordering, integrity and
message boundaries for free from :mod:`multiprocessing.connection`.
Sockets give none of that beyond byte ordering, so the network shard
transport defines an explicit frame::

    0      2     3     4        8        12
    +------+-----+-----+--------+--------+----------------+
    | 'RQ' | ver | rsv | length | crc32  | payload ...    |
    +------+-----+-----+--------+--------+----------------+
      magic  u8    u8    u32 BE   u32 BE   `length` bytes

* **magic + version** reject cross-protocol garbage (a stray HTTP
  probe, a mismatched peer) on the first 3 bytes instead of feeding
  junk into the unpickler.
* **length** is read *before* the payload and validated against
  ``max_frame_bytes`` — a corrupted or hostile length prefix is
  rejected without allocating or reading gigabytes.
* **crc32** covers the payload; a frame that arrives bit-flipped is
  dropped as :class:`FrameCorrupted`, never unpickled.
* **payload** is a compact pickled ``(kind, body)`` tuple — the same
  message vocabulary the pipe protocol speaks.

Every failure mode is a typed :class:`FrameError` subclass, so the
reader thread can distinguish "peer is gone" (:class:`FrameClosed`)
from "peer is speaking garbage" (:class:`FrameCorrupted` /
:class:`FrameTooLarge`) — both tear the connection down cleanly
instead of wedging the reader.

:class:`FrameStream` wraps a connected socket with per-message read
timeouts (``recv(timeout=...)`` returns ``None`` on timeout, it never
blocks forever) and a send lock so heartbeat, resend and data-plane
writers may share one connection.  Read deadlines are implemented
with ``select`` — never ``settimeout`` — so a sender and a receiver
thread sharing the socket cannot clobber each other's timeout
mid-syscall (the socket's timeout is fixed to the send ceiling once,
at construction).

**Trust boundary.**  The payload is a pickle, and ``pickle.loads`` on
attacker-controlled bytes is arbitrary code execution — CRC32 is an
integrity check against line noise, not an authenticity check against
a hostile peer.  Both ends therefore run an HMAC-SHA256
challenge/response (:func:`deliver_challenge` /
:func:`answer_challenge`, the same shape as
``multiprocessing.connection``'s authkey handshake) over a shared
secret *before a single frame is read*: the listener proves the
dialer holds the key before unpickling anything, and the dialer
proves the listener does before shipping it a model.  An empty key
degrades to an unauthenticated handshake and is only acceptable on a
loopback or otherwise-trusted link — never expose a worker port with
an empty key on a network where untrusted hosts can reach it.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import select
import socket
import struct
import threading
import time
import zlib
from typing import Any, Optional, Tuple

from repro.obs import get_registry

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "HEADER_LEN",
    "DEFAULT_MAX_FRAME_BYTES",
    "AUTH_CHALLENGE_MAGIC",
    "AUTH_WELCOME_MAGIC",
    "FrameError",
    "FrameClosed",
    "FrameCorrupted",
    "FrameTooLarge",
    "FrameAuthFailed",
    "FrameStream",
    "encode_frame",
    "decode_frame",
    "deliver_challenge",
    "answer_challenge",
]

FRAME_MAGIC = b"RQ"
FRAME_VERSION = 1
#: ``magic(2) + version(1) + reserved(1) + length(4) + crc32(4)``.
_HEADER = struct.Struct(">2sBBII")
HEADER_LEN = _HEADER.size
#: Generous for entry batches (a 256-entry batch pickles to ~100 KB)
#: while still rejecting a garbage length prefix instantly.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_REG = get_registry()
_FRAMES = _REG.counter(
    "repro_serving_net_frames_total",
    "Frames moved over shard socket transports, by direction.",
    labelnames=("direction",),
)
_FRAME_ERRORS = _REG.counter(
    "repro_serving_net_frame_errors_total",
    "Frames rejected by the shard socket transport, by error kind.",
    labelnames=("kind",),
)


class FrameError(Exception):
    """Base class for every framing failure."""


class FrameClosed(FrameError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


class FrameCorrupted(FrameError):
    """Bad magic, unsupported version, or a CRC mismatch."""


class FrameTooLarge(FrameError):
    """The length prefix exceeds the configured frame bound."""


class FrameAuthFailed(FrameError):
    """The peer failed (or never completed) the authentication handshake."""


# ----------------------------------------------------------------------
# Authentication handshake (before any frame is read)
# ----------------------------------------------------------------------

AUTH_CHALLENGE_MAGIC = b"RQA1"
AUTH_WELCOME_MAGIC = b"RQA2"
_AUTH_NONCE_LEN = 16
_AUTH_DIGEST_LEN = hashlib.sha256().digest_size
AUTH_HANDSHAKE_TIMEOUT_S = 5.0


def _auth_digest(auth_key: bytes, magic: bytes, nonce: bytes) -> bytes:
    return hmac.new(auth_key, magic + nonce, hashlib.sha256).digest()


def _recv_exact(sock: socket.socket, n: int, deadline: float) -> bytes:
    """Read exactly ``n`` bytes before ``deadline`` (monotonic seconds).

    Uses ``select`` for the wait so it never touches the socket's
    timeout; raises :class:`FrameClosed` on EOF and
    :class:`FrameAuthFailed` when the deadline passes first.
    """
    buf = b""
    while len(buf) < n:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise FrameAuthFailed(
                f"handshake timed out with {len(buf)} of {n} bytes read"
            )
        readable, _, _ = select.select([sock], [], [], remaining)
        if not readable:
            continue
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameClosed("peer closed the connection mid-handshake")
        buf += chunk
    return buf


def deliver_challenge(
    sock: socket.socket,
    auth_key: bytes,
    timeout_s: float = AUTH_HANDSHAKE_TIMEOUT_S,
) -> None:
    """Listener side: authenticate the dialer before reading any frame.

    Sends ``RQA1 + nonce``, requires ``HMAC-SHA256(key, RQA1+nonce)``
    back, then proves key possession to the dialer with
    ``HMAC-SHA256(key, RQA2+nonce)``.  Raises :class:`FrameAuthFailed`
    (after recording the rejection) on a bad or missing response —
    the caller must close the connection, and nothing the peer sent
    ever reaches the unpickler.
    """
    deadline = time.monotonic() + timeout_s
    nonce = os.urandom(_AUTH_NONCE_LEN)
    try:
        sock.sendall(AUTH_CHALLENGE_MAGIC + nonce)
        response = _recv_exact(sock, _AUTH_DIGEST_LEN, deadline)
    except OSError as exc:
        raise FrameClosed(f"handshake transport failed: {exc}") from exc
    expected = _auth_digest(auth_key, AUTH_CHALLENGE_MAGIC, nonce)
    if not hmac.compare_digest(response, expected):
        _FRAME_ERRORS.labels(kind="auth").inc()
        raise FrameAuthFailed("peer failed the authentication challenge")
    try:
        sock.sendall(_auth_digest(auth_key, AUTH_WELCOME_MAGIC, nonce))
    except OSError as exc:
        raise FrameClosed(f"handshake transport failed: {exc}") from exc


def answer_challenge(
    sock: socket.socket,
    auth_key: bytes,
    timeout_s: float = AUTH_HANDSHAKE_TIMEOUT_S,
) -> None:
    """Dialer side: answer the listener's challenge, verify its welcome.

    The welcome check is what makes the handshake *mutual*: the parent
    ships the model (a pickle the worker executes) inside ``hello``,
    so it must not talk to a listener that cannot prove it holds the
    key either.  Raises :class:`FrameAuthFailed` on any mismatch.
    """
    deadline = time.monotonic() + timeout_s
    try:
        challenge = _recv_exact(
            sock, len(AUTH_CHALLENGE_MAGIC) + _AUTH_NONCE_LEN, deadline
        )
    except OSError as exc:
        raise FrameClosed(f"handshake transport failed: {exc}") from exc
    if not challenge.startswith(AUTH_CHALLENGE_MAGIC):
        _FRAME_ERRORS.labels(kind="auth").inc()
        raise FrameAuthFailed(
            f"peer did not open with an auth challenge: {challenge[:4]!r}"
        )
    nonce = challenge[len(AUTH_CHALLENGE_MAGIC):]
    try:
        sock.sendall(_auth_digest(auth_key, AUTH_CHALLENGE_MAGIC, nonce))
        welcome = _recv_exact(sock, _AUTH_DIGEST_LEN, deadline)
    except OSError as exc:
        raise FrameClosed(f"handshake transport failed: {exc}") from exc
    expected = _auth_digest(auth_key, AUTH_WELCOME_MAGIC, nonce)
    if not hmac.compare_digest(welcome, expected):
        _FRAME_ERRORS.labels(kind="auth").inc()
        raise FrameAuthFailed("listener failed to prove key possession")


def encode_frame(message: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame bound"
        )
    header = _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, 0, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_frame(
    data: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[Any, int]:
    """Decode one frame from ``data``; returns ``(message, bytes_consumed)``.

    Raises :class:`FrameClosed` when ``data`` holds a truncated frame
    (more bytes may complete it), :class:`FrameCorrupted` on bad
    magic/version/CRC, :class:`FrameTooLarge` on a hostile length.
    """
    if len(data) < HEADER_LEN:
        raise FrameClosed(
            f"truncated header: {len(data)} of {HEADER_LEN} bytes"
        )
    magic, version, _reserved, length, crc = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameCorrupted(f"bad magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameCorrupted(f"unsupported frame version {version}")
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"length prefix {length} exceeds the {max_frame_bytes}-byte bound"
        )
    end = HEADER_LEN + length
    if len(data) < end:
        raise FrameClosed(
            f"truncated payload: {len(data) - HEADER_LEN} of {length} bytes"
        )
    payload = data[HEADER_LEN:end]
    if zlib.crc32(payload) != crc:
        raise FrameCorrupted("payload CRC mismatch")
    return pickle.loads(payload), end


class FrameStream:
    """A connected socket speaking the shard frame protocol.

    Parameters
    ----------
    sock:
        A connected ``socket.socket``.  The stream owns it: ``close()``
        closes it, and send/recv errors leave it closed.
    max_frame_bytes:
        Upper bound on a single frame's payload, both directions.
    send_timeout_s:
        Hard ceiling on one blocking ``sendall`` — the guard against a
        peer that stopped reading forever (a *partitioned* peer stalls
        for seconds; a wedged one would otherwise hold the sender
        hostage indefinitely).
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        send_timeout_s: float = 30.0,
    ) -> None:
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.send_timeout_s = send_timeout_s
        self._send_lock = threading.Lock()
        self._recv_buf = b""
        self._closed = False
        # The socket timeout is fixed to the send ceiling once, here,
        # and never touched again: `send` relies on it, `recv` waits
        # with select() instead.  Calling settimeout per-operation
        # from the two threads sharing this socket (parent sender +
        # receiver) could run sendall under a 0.5 s read timeout
        # (spurious mid-frame timeout → desynced stream) or leave a
        # read blocking for the 30 s send ceiling (stale-looking
        # heartbeats → false partition).
        sock.settimeout(send_timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # not a TCP socket (socketpair in tests)
            pass

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def send(self, kind: str, body: Any = None) -> None:
        """Frame and send one ``(kind, body)`` message.

        Raises ``OSError`` (or :class:`FrameClosed`) when the
        connection is unusable; the caller decides whether that means
        reconnect or death.
        """
        frame = encode_frame((kind, body), self.max_frame_bytes)
        with self._send_lock:
            if self._closed:
                raise FrameClosed("send on a closed frame stream")
            self._sock.sendall(frame)
        _FRAMES.labels(direction="sent").inc()

    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        """Receive one message; ``None`` when ``timeout`` elapses first.

        Raises :class:`FrameClosed` on EOF, :class:`FrameCorrupted` /
        :class:`FrameTooLarge` on protocol garbage — the reader thread
        never wedges on a bad peer.
        """
        while True:
            message = self._try_decode_buffered()
            if message is not None:
                return message
            if self._closed:
                raise FrameClosed("recv on a closed frame stream")
            # Wait for readability with select — not settimeout — so
            # the deadline never races a concurrent sender's use of
            # the shared socket's timeout (see __init__).
            try:
                readable, _, _ = select.select([self._sock], [], [], timeout)
            except (OSError, ValueError):
                # The fd went away under us (close() from another
                # thread mid-wait).
                raise FrameClosed("recv on a closed frame stream")
            if not readable:
                return None
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                # Readability then a timeout should not happen; treat
                # as "nothing arrived" rather than wedging the reader.
                return None
            except BlockingIOError:
                return None
            if not chunk:
                _FRAME_ERRORS.labels(kind="closed").inc()
                raise FrameClosed(
                    "peer closed the connection"
                    + (" mid-frame" if self._recv_buf else "")
                )
            self._recv_buf += chunk

    def _try_decode_buffered(self) -> Optional[Tuple[str, Any]]:
        if len(self._recv_buf) < HEADER_LEN:
            return None
        try:
            message, consumed = decode_frame(self._recv_buf, self.max_frame_bytes)
        except FrameClosed:
            return None  # incomplete: wait for more bytes
        except FrameTooLarge:
            _FRAME_ERRORS.labels(kind="too_large").inc()
            raise
        except FrameCorrupted:
            _FRAME_ERRORS.labels(kind="corrupted").inc()
            raise
        except Exception as exc:  # unpickling garbage
            _FRAME_ERRORS.labels(kind="corrupted").inc()
            raise FrameCorrupted(f"undecodable payload: {exc!r}") from exc
        self._recv_buf = self._recv_buf[consumed:]
        _FRAMES.labels(direction="received").inc()
        return message
