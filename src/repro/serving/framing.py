"""Length-prefixed, CRC-checked socket framing for shard transport.

The process backend's pipe protocol gets its ordering, integrity and
message boundaries for free from :mod:`multiprocessing.connection`.
Sockets give none of that beyond byte ordering, so the network shard
transport defines an explicit frame::

    0      2     3     4        8        12
    +------+-----+-----+--------+--------+----------------+
    | 'RQ' | ver | rsv | length | crc32  | payload ...    |
    +------+-----+-----+--------+--------+----------------+
      magic  u8    u8    u32 BE   u32 BE   `length` bytes

* **magic + version** reject cross-protocol garbage (a stray HTTP
  probe, a mismatched peer) on the first 3 bytes instead of feeding
  junk into the unpickler.
* **length** is read *before* the payload and validated against
  ``max_frame_bytes`` — a corrupted or hostile length prefix is
  rejected without allocating or reading gigabytes.
* **crc32** covers the payload; a frame that arrives bit-flipped is
  dropped as :class:`FrameCorrupted`, never unpickled.
* **payload** is a compact pickled ``(kind, body)`` tuple — the same
  message vocabulary the pipe protocol speaks.

Every failure mode is a typed :class:`FrameError` subclass, so the
reader thread can distinguish "peer is gone" (:class:`FrameClosed`)
from "peer is speaking garbage" (:class:`FrameCorrupted` /
:class:`FrameTooLarge`) — both tear the connection down cleanly
instead of wedging the reader.

:class:`FrameStream` wraps a connected socket with per-message read
timeouts (``recv(timeout=...)`` returns ``None`` on timeout, it never
blocks forever) and a send lock so heartbeat, resend and data-plane
writers may share one connection.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import zlib
from typing import Any, Optional, Tuple

from repro.obs import get_registry

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "HEADER_LEN",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameError",
    "FrameClosed",
    "FrameCorrupted",
    "FrameTooLarge",
    "FrameStream",
    "encode_frame",
    "decode_frame",
]

FRAME_MAGIC = b"RQ"
FRAME_VERSION = 1
#: ``magic(2) + version(1) + reserved(1) + length(4) + crc32(4)``.
_HEADER = struct.Struct(">2sBBII")
HEADER_LEN = _HEADER.size
#: Generous for entry batches (a 256-entry batch pickles to ~100 KB)
#: while still rejecting a garbage length prefix instantly.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_REG = get_registry()
_FRAMES = _REG.counter(
    "repro_serving_net_frames_total",
    "Frames moved over shard socket transports, by direction.",
    labelnames=("direction",),
)
_FRAME_ERRORS = _REG.counter(
    "repro_serving_net_frame_errors_total",
    "Frames rejected by the shard socket transport, by error kind.",
    labelnames=("kind",),
)


class FrameError(Exception):
    """Base class for every framing failure."""


class FrameClosed(FrameError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


class FrameCorrupted(FrameError):
    """Bad magic, unsupported version, or a CRC mismatch."""


class FrameTooLarge(FrameError):
    """The length prefix exceeds the configured frame bound."""


def encode_frame(message: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame bound"
        )
    header = _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, 0, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_frame(
    data: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[Any, int]:
    """Decode one frame from ``data``; returns ``(message, bytes_consumed)``.

    Raises :class:`FrameClosed` when ``data`` holds a truncated frame
    (more bytes may complete it), :class:`FrameCorrupted` on bad
    magic/version/CRC, :class:`FrameTooLarge` on a hostile length.
    """
    if len(data) < HEADER_LEN:
        raise FrameClosed(
            f"truncated header: {len(data)} of {HEADER_LEN} bytes"
        )
    magic, version, _reserved, length, crc = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameCorrupted(f"bad magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameCorrupted(f"unsupported frame version {version}")
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"length prefix {length} exceeds the {max_frame_bytes}-byte bound"
        )
    end = HEADER_LEN + length
    if len(data) < end:
        raise FrameClosed(
            f"truncated payload: {len(data) - HEADER_LEN} of {length} bytes"
        )
    payload = data[HEADER_LEN:end]
    if zlib.crc32(payload) != crc:
        raise FrameCorrupted("payload CRC mismatch")
    return pickle.loads(payload), end


class FrameStream:
    """A connected socket speaking the shard frame protocol.

    Parameters
    ----------
    sock:
        A connected ``socket.socket``.  The stream owns it: ``close()``
        closes it, and send/recv errors leave it closed.
    max_frame_bytes:
        Upper bound on a single frame's payload, both directions.
    send_timeout_s:
        Hard ceiling on one blocking ``sendall`` — the guard against a
        peer that stopped reading forever (a *partitioned* peer stalls
        for seconds; a wedged one would otherwise hold the sender
        hostage indefinitely).
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        send_timeout_s: float = 30.0,
    ) -> None:
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.send_timeout_s = send_timeout_s
        self._send_lock = threading.Lock()
        self._recv_buf = b""
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # not a TCP socket (socketpair in tests)
            pass

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def send(self, kind: str, body: Any = None) -> None:
        """Frame and send one ``(kind, body)`` message.

        Raises ``OSError`` (or :class:`FrameClosed`) when the
        connection is unusable; the caller decides whether that means
        reconnect or death.
        """
        frame = encode_frame((kind, body), self.max_frame_bytes)
        with self._send_lock:
            if self._closed:
                raise FrameClosed("send on a closed frame stream")
            self._sock.settimeout(self.send_timeout_s)
            self._sock.sendall(frame)
        _FRAMES.labels(direction="sent").inc()

    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        """Receive one message; ``None`` when ``timeout`` elapses first.

        Raises :class:`FrameClosed` on EOF, :class:`FrameCorrupted` /
        :class:`FrameTooLarge` on protocol garbage — the reader thread
        never wedges on a bad peer.
        """
        while True:
            message = self._try_decode_buffered()
            if message is not None:
                return message
            if self._closed:
                raise FrameClosed("recv on a closed frame stream")
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except BlockingIOError:
                # timeout=0 puts the socket in non-blocking mode, where
                # "nothing ready" surfaces as EAGAIN, not socket.timeout.
                return None
            if not chunk:
                _FRAME_ERRORS.labels(kind="closed").inc()
                raise FrameClosed(
                    "peer closed the connection"
                    + (" mid-frame" if self._recv_buf else "")
                )
            self._recv_buf += chunk

    def _try_decode_buffered(self) -> Optional[Tuple[str, Any]]:
        if len(self._recv_buf) < HEADER_LEN:
            return None
        try:
            message, consumed = decode_frame(self._recv_buf, self.max_frame_bytes)
        except FrameClosed:
            return None  # incomplete: wait for more bytes
        except FrameTooLarge:
            _FRAME_ERRORS.labels(kind="too_large").inc()
            raise
        except FrameCorrupted:
            _FRAME_ERRORS.labels(kind="corrupted").inc()
            raise
        except Exception as exc:  # unpickling garbage
            _FRAME_ERRORS.labels(kind="corrupted").inc()
            raise FrameCorrupted(f"undecodable payload: {exc!r}") from exc
        self._recv_buf = self._recv_buf[consumed:]
        _FRAMES.labels(direction="received").inc()
        return message
