"""Shard placement maps and the socket-backend router.

Where the process backend always spawns its children itself, the
socket backend separates *what runs where* (this module's
:class:`ShardPlacement`) from *how it is supervised* (the
:class:`SocketShardWorker` fleet built by :class:`SocketShardRouter`).
Three placement shapes, one spec grammar:

``local:N``
    Spawn ``N`` worker *processes* over loopback — the multi-core
    deployment, procshard's semantics over the socket transport.
``inproc:N``
    Run ``N`` workers as daemon *threads* of this process, still over
    a real loopback socket — zero spawn cost, CI-friendly, exercises
    every byte of the wire protocol.
``0=host:port,1=host:port,...``
    Connect to externally managed workers (``python -m repro
    netshard-worker --listen HOST:PORT``), one address per shard
    index.  The parent ships the model inside the ``hello``, so a
    standalone worker needs no model file of its own.

Routing itself is unchanged: ``QoEService.submit`` keeps using the
same CRC32 :func:`~repro.serving.shard.shard_index` partitioning, so a
subscriber's entries land on the same shard index no matter which
machine that index lives on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.framework import SessionDiagnosis
from repro.obs import MetricsRegistry, get_logger
from repro.realtime.monitor import Alarm

from .dlq import DeadLetterQueue
from .netshard import NetShardConfig, SocketOpts, SocketShardWorker
from .queue import BoundedQueue
from .router import RegistryFolder

__all__ = ["ShardPlacement", "SocketShardRouter"]

_LOG = get_logger("serving.placement")


@dataclass(frozen=True)
class ShardPlacement:
    """A parsed placement: mode plus (for ``remote``) shard addresses.

    ``mode`` is ``"local"``, ``"inproc"`` or ``"remote"``;
    ``addresses`` maps shard index → ``(host, port)`` and is empty for
    the self-launching modes.
    """

    mode: str
    n_shards: int
    addresses: Dict[int, Tuple[str, int]]

    @classmethod
    def parse(cls, spec: str, n_shards: Optional[int] = None) -> "ShardPlacement":
        """Parse a placement spec, validating it covers shards 0..N-1.

        ``n_shards`` cross-checks a ``local:N``/``inproc:N`` count or
        the size of an explicit address map; ``None`` takes the count
        from the spec itself.
        """
        spec = (spec or "").strip()
        if not spec:
            raise ValueError("empty placement spec")
        for mode in ("local", "inproc"):
            prefix = f"{mode}:"
            if spec.startswith(prefix):
                try:
                    count = int(spec[len(prefix):])
                except ValueError as exc:
                    raise ValueError(
                        f"bad placement spec {spec!r}: expected {mode}:N"
                    ) from exc
                if count < 1:
                    raise ValueError("placement needs at least 1 shard")
                if n_shards is not None and count != n_shards:
                    raise ValueError(
                        f"placement {spec!r} names {count} shards but the "
                        f"service wants {n_shards}"
                    )
                return cls(mode=mode, n_shards=count, addresses={})
        addresses: Dict[int, Tuple[str, int]] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            index_part, eq, address = token.partition("=")
            host, colon, port = address.rpartition(":")
            if not eq or not colon or not host:
                raise ValueError(
                    f"bad placement token {token!r}: expected IDX=HOST:PORT"
                )
            try:
                index = int(index_part)
                port_no = int(port)
            except ValueError as exc:
                raise ValueError(
                    f"bad placement token {token!r}: expected IDX=HOST:PORT"
                ) from exc
            if index in addresses:
                raise ValueError(f"duplicate shard index {index} in placement")
            addresses[index] = (host, port_no)
        if not addresses:
            raise ValueError(f"placement spec {spec!r} names no shards")
        count = len(addresses)
        if sorted(addresses) != list(range(count)):
            raise ValueError(
                f"placement must cover shard indices 0..{count - 1} exactly, "
                f"got {sorted(addresses)}"
            )
        if n_shards is not None and count != n_shards:
            raise ValueError(
                f"placement names {count} shards but the service wants "
                f"{n_shards}"
            )
        return cls(mode="remote", n_shards=count, addresses=addresses)

    def describe(self) -> str:
        if self.mode in ("local", "inproc"):
            return f"{self.mode}:{self.n_shards}"
        return ",".join(
            f"{index}={host}:{port}"
            for index, (host, port) in sorted(self.addresses.items())
        )


class SocketShardRouter:
    """Constructs and owns the socket-shard fleet for one service.

    The socket twin of :class:`~repro.serving.router.
    ProcessShardRouter`: one parent-side queue + config per shard, all
    sharing one :class:`~repro.serving.router.RegistryFolder` and the
    service's DLQ; kill *and* partition specs come from the fault
    injector by value, and the ``slow_link`` delay hook is threaded
    into every worker's sender.
    """

    def __init__(
        self,
        placement: ShardPlacement,
        framework,
        dead_letters: DeadLetterQueue,
        queue_capacity: int = 1024,
        policy: str = "block",
        max_batch: int = 32,
        max_delay_s: float = 0.25,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        severe_alarm_after: int = 3,
        stall_ratio_alarm: float = 0.5,
        min_sessions_for_ratio: int = 5,
        clock_skew_tolerance_s: float = 5.0,
        telemetry: bool = True,
        sample_every: int = 128,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        faults=None,
        registry: Optional[MetricsRegistry] = None,
        start_method: Optional[str] = None,
        early_after_chunks: Optional[int] = None,
        early_confidence: float = 0.0,
        on_provisional=None,
        socket_opts: Optional[SocketOpts] = None,
    ) -> None:
        self.placement = placement
        self.folder = RegistryFolder(registry)
        self.shards: List[SocketShardWorker] = []
        mode = {"local": "spawn", "inproc": "inproc", "remote": "remote"}[
            placement.mode
        ]
        slow_link = None
        if faults is not None and faults.plan.slow_link_fraction > 0.0:
            slow_link = faults.slow_link_delay_s
        for index in range(placement.n_shards):
            kill_at, kill_times = (0, 0)
            partition_at, partition_secs = (0, 0.0)
            if faults is not None:
                kill_spec = faults.kill_spec_for(index)
                if kill_spec is not None:
                    kill_at, kill_times = kill_spec
                partition_spec = faults.partition_spec_for(index)
                if partition_spec is not None:
                    partition_at, partition_secs = partition_spec
            config = NetShardConfig(
                index=index,
                framework=framework,
                queue_capacity=queue_capacity,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                idle_gap_s=idle_gap_s,
                min_media_chunks=min_media_chunks,
                severe_alarm_after=severe_alarm_after,
                stall_ratio_alarm=stall_ratio_alarm,
                min_sessions_for_ratio=min_sessions_for_ratio,
                clock_skew_tolerance_s=clock_skew_tolerance_s,
                telemetry=telemetry,
                sample_every=sample_every,
                kill_at_entry=kill_at,
                kill_times=kill_times,
                partition_at_entry=partition_at,
                partition_secs=partition_secs,
                early_after_chunks=early_after_chunks,
                early_confidence=early_confidence,
            )
            self.shards.append(
                SocketShardWorker(
                    config=config,
                    queue=BoundedQueue(
                        capacity=queue_capacity,
                        policy=policy,
                        name=f"shard{index}",
                    ),
                    dead_letters=dead_letters,
                    mode=mode,
                    address=placement.addresses.get(index),
                    on_diagnosis=on_diagnosis,
                    on_alarm=on_alarm,
                    on_provisional=on_provisional,
                    fold=self.folder.absorb,
                    faults=faults,
                    opts=socket_opts,
                    slow_link=slow_link,
                    start_method=start_method,
                )
            )
        _LOG.info(
            "socket_fleet_built",
            placement=placement.describe(),
            shards=placement.n_shards,
        )

    def snapshot(self) -> Dict:
        """Aggregation-tier block for ``QoEService.health()``."""
        return {
            "backend": "socket",
            "placement": self.placement.describe(),
            "registry_folds": self.folder.snapshot(),
            "seen_subscribers": sum(
                len(shard._seen_subscribers) for shard in self.shards
            ),
            "reconnects": sum(shard.reconnects for shard in self.shards),
        }
