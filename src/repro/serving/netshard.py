"""Socket-backed shard workers: diagnosis across machines.

:mod:`repro.serving.procshard` moved shards onto other *cores*; this
module moves them onto other *machines* — the transport becomes a
length-prefixed, CRC-checked socket frame (:mod:`repro.serving.framing`)
and the spawning parent becomes a *placement map*
(:mod:`repro.serving.placement`).  The message vocabulary is exactly
the pipe protocol's::

    parent → worker  ("hello",   {token, shard, resume, config?,
                                  out_diagnoses/alarms/provisional/
                                  letters, entries_processed})
                     ("entries", {base_seq, entries})
                     ("drain",   {})
    worker → parent  ("hello_ack", {recv_seq, incarnation, configured})
                     ("out",     {diagnoses, alarms, provisional,
                                  letters, entries_processed, quarantined})
                     ("registry", <state delta>)
                     ("hb",      {open_sessions, pending, recv_seq})
                     ("dying",   {error, kills})       then exit
                     ("drained", {health, ...})        then exit

Before any of that vocabulary flows, every connection passes the
mutual HMAC challenge of :mod:`repro.serving.framing` — frames are
pickles, so neither side reads a frame from a peer that has not
proven possession of the shared key, and the worker additionally pins
the first ``hello``'s token so a reconnect from a *different* parent
(same key, other service instance) cannot hijack a live session.

The network adds failure modes pipes never exhibit, and the design is
built around them:

* **Session sequence numbers.**  Every entry the parent ships carries
  a per-shard monotonically increasing sequence number; the worker
  acknowledges the highest sequence it has accepted in every
  heartbeat and deduplicates on it.  The parent retains sent entries
  in an *unacked* buffer until acknowledged — so a dropped connection
  loses nothing: the reconnect handshake (``hello`` with
  ``resume=True``) learns the worker's ``recv_seq``, prunes the
  buffer, and resends the gap **in order**.  The worker's
  per-subscriber monotonicity watermark therefore survives a
  reconnect with no duplicate and no regressed entry.
* **Partitioned ≠ dead.**  A worker that is reachable-but-slow keeps
  its TCP connection alive while its heartbeats go stale.  The
  parent-side handle exposes ``connection_alive`` so the supervisor's
  three-state model (healthy / partitioned / dead) can quarantine the
  backlog *without* restarting a worker whose state is intact.
* **Reconnect under a deadline.**  Connection attempts run through
  :func:`~repro.faults.retry_with_backoff` with a hard
  ``max_elapsed_s`` cap; only when the deadline is spent does the
  handle declare the shard dead and hand it to the supervisor's
  restart/circuit machinery.
* **At-most-once across a worker death.**  A dead worker (process
  exit, unreachable address) loses its whole shard state, exactly
  like a dead shard process: the parent marks every subscriber it
  ever shipped there as fault-affected and the replacement starts
  empty.  Results already received stay received — ``out`` messages
  are cumulative-cursor based, and the resume handshake tells the
  worker which outputs the parent already holds, so a reconnect never
  re-delivers nor drops a diagnosis.

Worker deployment shapes (all speak the identical protocol):

* ``start_inproc_worker`` — a daemon *thread* serving loopback; zero
  spawn cost, CI-friendly, shares the parent registry (so it ships no
  registry deltas).
* spawn-local — a child *process* over loopback (the router does this
  for ``placement="local:N"``), true multi-core like procshard.
* standalone — ``python -m repro netshard-worker --listen HOST:PORT``;
  the parent ships the model inside ``hello`` at connect time.

Known limitations (documented, not silent): registry deltas and trace
exemplars in flight when a connection drops are lost (telemetry may
undercount across a reconnect — never the diagnosis stream); e2e
latency spans assume a shared monotonic clock, which holds for
loopback/local workers only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.capture.weblog import WeblogEntry
from repro.core.framework import QoEFramework, SessionDiagnosis
from repro.faults.retry import retry_with_backoff
from repro.obs import (
    PipelineTelemetry,
    get_logger,
    get_recorder,
    get_registry,
    registry_state_delta,
)
from repro.online.early import ConvergenceReport, ProvisionalDiagnosis
from repro.realtime.monitor import Alarm, SubscriberHealth

from .batcher import MicroBatcher
from .dlq import DeadLetterQueue
from .framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    FrameStream,
    answer_challenge,
    deliver_challenge,
)
from .models import ModelManager
from .procshard import _default_start_method, _KillBudget
from .queue import BoundedQueue, QueueClosed, QueueEmpty, QueueFull
from .shard import ShardWorker

__all__ = [
    "NetShardConfig",
    "SocketShardWorker",
    "ShardUnreachable",
    "ShardConnectionLost",
    "run_worker",
    "start_inproc_worker",
]

_LOG = get_logger("serving.netshard")

_REG = get_registry()
_RECONNECTS = _REG.counter(
    "repro_serving_net_reconnects_total",
    "Successful reconnect-and-resume handshakes, by shard.",
    labelnames=("shard",),
)
_RESENT = _REG.counter(
    "repro_serving_net_resent_entries_total",
    "Entries resent from the unacked buffer after a reconnect.",
    labelnames=("shard",),
)

#: Entries shipped per frame (amortises pickle + syscall cost).
_SEND_BATCH = 256
#: Worker main-loop poll; bounds drain/death detection latency.
_POLL_S = 0.02
#: A connection that never completes its hello is dropped after this.
_HELLO_TIMEOUT_S = 5.0


class ShardUnreachable(RuntimeError):
    """No connection could be established within the connect deadline."""


class ShardConnectionLost(RuntimeError):
    """The connection died and could not be resumed; the shard is dead."""


@dataclass
class NetShardConfig:
    """Everything a socket shard worker needs, picklable for spawn/hello.

    The same knob set as :class:`~repro.serving.procshard.ProcShardConfig`
    plus the network-only fields: ``partition_at_entry`` /
    ``partition_secs`` carry the fault plan's *partition* spec for this
    shard (the worker goes reachable-but-silent for that long after
    accepting its N-th entry), and ``ship_registry`` is switched off
    for in-process workers that already write the parent registry.
    """

    index: int
    framework: Optional[QoEFramework] = None
    queue_capacity: int = 1024
    max_batch: int = 32
    max_delay_s: float = 0.25
    idle_gap_s: float = 30.0
    min_media_chunks: int = 3
    severe_alarm_after: int = 3
    stall_ratio_alarm: float = 0.5
    min_sessions_for_ratio: int = 5
    clock_skew_tolerance_s: float = 5.0
    telemetry: bool = True
    sample_every: int = 128
    kill_at_entry: int = 0
    kill_times: int = 0
    partition_at_entry: int = 0
    partition_secs: float = 0.0
    heartbeat_interval_s: float = 0.25
    early_after_chunks: Optional[int] = None
    early_confidence: float = 0.0
    ship_registry: bool = True
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES


@dataclass
class SocketOpts:
    """Parent-side transport tuning for one service's socket shards."""

    #: Hard deadline on establishing (or re-establishing) a connection.
    connect_deadline_s: float = 8.0
    #: Backoff base between connection attempts (deterministic, no jitter).
    connect_backoff_s: float = 0.05
    #: Per-message read poll; bounds how long shutdown can lag.
    read_timeout_s: float = 0.5
    #: Ceiling on one blocking send (a wedged peer cannot hold the
    #: sender hostage forever).
    send_timeout_s: float = 30.0
    #: Entries retained in the unacked resend buffer before the sender
    #: stops pulling from the ingest queue (backpressure boundary —
    #: also what forces a partitioned shard's backlog to accumulate in
    #: the quarantinable parent queue instead of growing unbounded).
    max_unacked: int = 2048
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Shared secret for the HMAC handshake to *remote* (standalone)
    #: workers — must match the worker's ``--auth-key-file`` /
    #: ``REPRO_NETSHARD_AUTHKEY``.  ``None`` degrades to an empty key
    #: (unauthenticated): loopback/trusted links only.  Spawned and
    #: in-process workers ignore this; the parent generates a random
    #: per-worker key and hands it over out of band at launch.
    auth_key: Optional[bytes] = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


#: Already-shipped letters retained for a reconnecting parent's rewind.
#: A rewind can only reach back as far as the letters in flight when
#: the connection dropped — at most one flush's worth — so a small
#: retention window keeps the log bounded on a long-lived worker
#: without ever trimming a letter the parent could still ask for.
_LETTER_RETAIN = 1024


class _LetterLog:
    """Worker-side dead-letter shim with a non-destructive cursor.

    Unlike the pipe backend's take()-based shim, letters stay in the
    log so a reconnecting parent can rewind the cursor to what it
    actually received and get the in-flight letters again.  Cursors
    are *absolute* letter indices; ``base`` is the absolute index of
    the first retained letter, so confirmed letters can be trimmed
    (bounded memory on a noisy long-lived worker) without shifting
    anyone's cursor.
    """

    def __init__(self) -> None:
        self._letters: List[tuple] = []
        self.base = 0
        self.trimmed = 0

    @property
    def end(self) -> int:
        """Absolute index one past the newest letter."""
        return self.base + len(self._letters)

    def put(
        self, entry: WeblogEntry, reason: str, shard: int, detail: str = ""
    ) -> None:
        self._letters.append((entry, reason, detail))

    def slice(self, lo: int, hi: int) -> List[tuple]:
        return self._letters[lo - self.base : hi - self.base]

    def trim_to(self, cursor: int) -> None:
        """Drop letters below absolute index ``cursor`` (clamped)."""
        drop = min(max(cursor - self.base, 0), len(self._letters))
        if drop:
            del self._letters[:drop]
            self.base += drop
            self.trimmed += drop


class _WorkerState:
    """Everything that must survive a connection drop on the worker.

    The real :class:`ShardWorker` (tracker, monitor, batcher, the
    per-subscriber monotonicity watermark) lives here, outside any
    single connection's scope — which is what makes reconnect-and-
    resume a *resume* and not a restart.
    """

    def __init__(self, config: Optional[NetShardConfig]) -> None:
        self.config: Optional[NetShardConfig] = None
        self.worker: Optional[ShardWorker] = None
        self.queue: Optional[BoundedQueue] = None
        self.letters = _LetterLog()
        self.kills: Optional[_KillBudget] = None
        self.shard_tel = None
        self.token: Optional[str] = None
        self.recv_seq = 0
        self.received = 0
        self.incarnation = int(time.monotonic() * 1000) & 0x7FFFFFFF
        self.backlog: Deque[WeblogEntry] = deque()
        self.draining = False
        self.partition_fired = False
        self.prev_registry_state: Optional[Dict] = None
        # Output cursors: how much of each stream the parent holds.
        self.sent_diagnoses = 0
        self.sent_alarms = 0
        self.sent_provisional = 0
        self.sent_letters = 0
        self.sent_entries = -1
        if config is not None:
            self.configure(config)

    def configure(self, config: Optional[NetShardConfig]) -> None:
        if self.worker is not None:
            return
        if config is None or config.framework is None:
            raise FrameError("hello carried no model for an unconfigured worker")
        self.config = config
        self.queue = BoundedQueue(
            capacity=config.queue_capacity,
            policy="block",
            name=f"shard{config.index}n",
        )
        self.shard_tel = (
            PipelineTelemetry(sample_every=config.sample_every).for_shard(
                config.index
            )
            if config.telemetry
            else None
        )
        self.kills = _KillBudget(config.kill_at_entry, config.kill_times)
        self.worker = ShardWorker(
            index=config.index,
            models=ModelManager(config.framework),
            queue=self.queue,
            batcher=MicroBatcher(
                max_batch=config.max_batch, max_delay_s=config.max_delay_s
            ),
            idle_gap_s=config.idle_gap_s,
            min_media_chunks=config.min_media_chunks,
            severe_alarm_after=config.severe_alarm_after,
            stall_ratio_alarm=config.stall_ratio_alarm,
            min_sessions_for_ratio=config.min_sessions_for_ratio,
            dead_letters=self.letters,
            clock_skew_tolerance_s=config.clock_skew_tolerance_s,
            fault_hook=self.kills.hook if config.kill_times > 0 else None,
            telemetry=self.shard_tel,
            early_after_chunks=config.early_after_chunks,
            early_confidence=config.early_confidence,
        )
        self.worker.start()

    # -- output shipping ----------------------------------------------

    def rewind(self, hello: Dict) -> None:
        """Reset the output cursors to what the parent says it holds."""
        self.sent_diagnoses = int(hello.get("out_diagnoses", 0))
        self.sent_alarms = int(hello.get("out_alarms", 0))
        self.sent_provisional = int(hello.get("out_provisional", 0))
        wanted = int(hello.get("out_letters", 0))
        if wanted < self.letters.base:
            # The parent rewound past the retention window — those
            # letters were trimmed as confirmed-or-aged-out and cannot
            # be re-delivered.  Loud, accounted, never silent.
            _LOG.error(
                "netshard_letters_unrecoverable",
                wanted=wanted,
                base=self.letters.base,
                lost=self.letters.base - wanted,
            )
            wanted = self.letters.base
        self.sent_letters = wanted
        # Everything below the parent's cursor is confirmed held: free it.
        self.letters.trim_to(wanted)
        self.sent_entries = -1  # force a fresh counters frame

    def flush_outputs(self, stream: FrameStream) -> None:
        worker = self.worker
        diagnoses = worker.monitor.diagnoses
        alarms = worker.monitor.alarms
        provisional = worker.monitor.provisional
        # Snapshot each length exactly once: the shard thread appends
        # to these lists concurrently, and a cursor taken from a
        # *re-read* len() after the send would mark items as sent that
        # were appended after the slice — silently lost output.
        n_diagnoses = len(diagnoses)
        n_alarms = len(alarms)
        n_provisional = len(provisional)
        n_letters = self.letters.end
        n_entries = worker.entries_processed
        if (
            n_diagnoses == self.sent_diagnoses
            and n_alarms == self.sent_alarms
            and n_provisional == self.sent_provisional
            and n_letters == self.sent_letters
            and n_entries == self.sent_entries
        ):
            return
        out = {
            "diagnoses": diagnoses[self.sent_diagnoses:n_diagnoses],
            "alarms": alarms[self.sent_alarms:n_alarms],
            "provisional": provisional[self.sent_provisional:n_provisional],
            "letters": self.letters.slice(self.sent_letters, n_letters),
            "entries_processed": n_entries,
            "quarantined": worker.quarantined,
        }
        stream.send("out", out)
        # Cursors advance only after the send returned: a send that
        # raised leaves them unmoved, so the reconnect resends.
        self.sent_diagnoses = n_diagnoses
        self.sent_alarms = n_alarms
        self.sent_provisional = n_provisional
        self.sent_letters = n_letters
        self.sent_entries = n_entries
        # Keep the log bounded on a long-lived connection: retain a
        # rewind window of recently shipped letters, trim the rest.
        self.letters.trim_to(max(self.letters.base, n_letters - _LETTER_RETAIN))

    def ship_registry(self, stream: FrameStream) -> None:
        if not self.config.ship_registry:
            return
        current = get_registry().to_state()
        stream.send("registry", registry_state_delta(current, self.prev_registry_state))
        self.prev_registry_state = current


def _serve_connection(stream: FrameStream, st: _WorkerState) -> Optional[str]:
    """Serve one parent connection; returns 'drained'/'dying' to exit,
    ``None`` when the connection dropped and the worker should await a
    reconnect with its state intact."""
    hello = stream.recv(timeout=_HELLO_TIMEOUT_S)
    if hello is None or hello[0] != "hello":
        raise FrameError(f"expected hello, got {hello!r}")
    body = hello[1] or {}
    token = body.get("token")
    if st.token is None:
        # First hello pins the session to this parent: a reconnect
        # must present the same token or it is a different service
        # trying to hijack a live shard session.
        st.token = token
    elif token != st.token:
        raise FrameError(
            f"hello token mismatch: session pinned to another parent "
            f"(got {token!r})"
        )
    if st.worker is None:
        st.configure(body.get("config") or None)
    if body.get("resume"):
        st.rewind(body)
    stream.send(
        "hello_ack",
        {
            "recv_seq": st.recv_seq,
            "incarnation": st.incarnation,
            "entries_received": st.received,
        },
    )
    config = st.config
    worker = st.worker
    queue = st.queue
    last_beat = 0.0
    while True:
        while st.backlog and worker.state in ("created", "running"):
            try:
                queue.put(st.backlog[0], timeout=_POLL_S)
                st.backlog.popleft()
            except QueueFull:
                break
        msg = stream.recv(timeout=0.0 if st.backlog else _POLL_S)
        if msg is not None:
            kind, payload = msg
            if kind == "entries":
                base = payload["base_seq"]
                for offset, entry in enumerate(payload["entries"]):
                    seq = base + offset
                    if seq <= st.recv_seq:
                        continue  # duplicate from a resend overlap
                    st.recv_seq = seq
                    st.received += 1
                    st.backlog.append(entry)
                if (
                    config.partition_secs > 0.0
                    and not st.partition_fired
                    and st.received >= config.partition_at_entry
                ):
                    # Injected partition: reachable-but-silent.  The
                    # connection stays open, the real worker keeps
                    # chewing its queue, but nothing is read and no
                    # heartbeat flows until the nap ends.
                    st.partition_fired = True
                    _LOG.warning(
                        "injected_partition",
                        shard=config.index,
                        after_entries=st.received,
                        secs=config.partition_secs,
                    )
                    time.sleep(config.partition_secs)
                continue  # bias towards keeping the worker fed
            if kind == "drain":
                while st.backlog and worker.state in ("created", "running"):
                    try:
                        queue.put(st.backlog[0], timeout=0.2)
                        st.backlog.popleft()
                    except QueueFull:
                        pass
                queue.close()
                st.draining = True
        if worker.state == "failed":
            if st.shard_tel is not None:
                st.shard_tel.flush()
            st.flush_outputs(stream)
            st.ship_registry(stream)
            stream.send(
                "dying", {"error": repr(worker.error), "kills": st.kills.fired}
            )
            return "dying"
        if st.draining and not worker.alive:
            st.flush_outputs(stream)
            st.ship_registry(stream)
            stream.send(
                "drained",
                {
                    "health": dict(worker.monitor.health),
                    "entries_processed": worker.entries_processed,
                    "quarantined": worker.quarantined,
                    "early_report": worker.early_report(),
                },
            )
            return "drained"
        now = time.monotonic()
        if now - last_beat >= config.heartbeat_interval_s:
            last_beat = now
            st.flush_outputs(stream)
            st.ship_registry(stream)
            stream.send(
                "hb",
                {
                    "open_sessions": worker.monitor.tracker.open_sessions,
                    "pending": worker.batcher.pending,
                    "recv_seq": st.recv_seq,
                },
            )


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[NetShardConfig] = None,
    on_port: Optional[Callable[[int], None]] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    in_process: bool = False,
    auth_key: bytes = b"",
) -> int:
    """Listen-and-serve loop of one socket shard worker.

    Serves one parent connection at a time; a dropped connection
    returns to ``accept`` with the shard state intact (that is the
    reconnect window).  Returns 0 after a clean drain, 3 after a
    worker failure (``dying``) — the caller turns that into an exit
    code or, for in-process workers, just lets the thread end.

    Every accepted connection must pass the HMAC challenge
    (:func:`~repro.serving.framing.deliver_challenge`) over
    ``auth_key`` before a single frame — hence before any pickle —
    is read; a failed challenge drops the connection and the worker
    keeps listening.  An empty ``auth_key`` degrades the challenge to
    unauthenticated and is only safe on loopback or an otherwise
    trusted link — never expose an empty-key worker port to an
    untrusted network (frames are pickles; unpickling attacker bytes
    is arbitrary code execution).

    Parameters
    ----------
    config:
        Pre-provisioned shard config; ``None`` (standalone mode) waits
        for the first ``hello`` to carry one.
    on_port:
        Called once with the actually bound port (``port=0`` binds an
        ephemeral one).
    in_process:
        True when the worker shares the parent's process: skips
        registry shipping (the metrics are already local).
    auth_key:
        Shared secret for the per-connection HMAC handshake.  The
        router generates one per spawned/in-process worker; standalone
        workers take it from ``--auth-key-file`` or
        ``REPRO_NETSHARD_AUTHKEY``.
    """
    listener = socket.create_server((host, port), backlog=4)
    bound = listener.getsockname()[1]
    if on_port is not None:
        on_port(bound)
    if config is not None and in_process:
        config = replace(config, ship_registry=False)
    st = _WorkerState(config)
    _LOG.info(
        "netshard_worker_listening",
        host=host,
        port=bound,
        configured=st.worker is not None,
    )
    try:
        while True:
            conn, peer = listener.accept()
            try:
                # Authenticate before constructing the frame reader:
                # nothing an unauthenticated peer sends may reach the
                # unpickler.
                deliver_challenge(conn, auth_key)
            except (FrameError, OSError) as exc:
                _LOG.warning(
                    "netshard_auth_rejected", peer=str(peer), error=repr(exc)
                )
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            stream = FrameStream(
                conn,
                max_frame_bytes=(
                    st.config.max_frame_bytes if st.config else max_frame_bytes
                ),
            )
            try:
                outcome = _serve_connection(stream, st)
            except (FrameError, OSError) as exc:
                # Connection-scoped failure: drop it, keep the shard
                # state, await a reconnect.
                _LOG.warning(
                    "netshard_connection_lost", peer=str(peer), error=repr(exc)
                )
                stream.close()
                continue
            stream.close()
            if outcome == "drained":
                return 0
            if outcome == "dying":
                return 3
    finally:
        listener.close()


def _worker_process_main(host, port, config, port_conn, auth_key) -> None:
    """Spawn-local process entry point (module top level: spawn-safe)."""
    get_registry().reset()  # fresh under spawn; zero inherited state under fork
    try:
        code = run_worker(
            host,
            port,
            config=config,
            on_port=lambda p: (port_conn.send(p), port_conn.close()),
            auth_key=auth_key,
        )
    except BaseException:  # noqa: BLE001 - exit code is the report
        os._exit(4)
    os._exit(code)


def start_inproc_worker(
    config: NetShardConfig, host: str = "127.0.0.1", auth_key: bytes = b""
) -> Tuple[threading.Thread, int]:
    """A worker serving loopback from a daemon thread of this process.

    The CI-friendly deployment shape: no spawn cost, no pickled model
    hand-off, same wire protocol.  Returns ``(thread, port)``.
    """
    ready = threading.Event()
    holder: List[int] = []

    def _on_port(port: int) -> None:
        holder.append(port)
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={
            "host": host,
            "port": 0,
            "config": config,
            "on_port": _on_port,
            "in_process": True,
            "auth_key": auth_key,
        },
        name=f"repro-netshard-{config.index}-worker",
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=10.0):
        raise ShardUnreachable("in-process worker never bound its port")
    return thread, holder[0]


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _RemoteTracker:
    def __init__(self) -> None:
        self.open_sessions = 0


class _RemoteMonitorView:
    """Duck-typed stand-in for the worker's ``RealTimeMonitor``."""

    def __init__(self) -> None:
        self.health: Dict[str, SubscriberHealth] = {}
        self.callback_errors = 0
        self.tracker = _RemoteTracker()


class _RemoteBatcherView:
    def __init__(self) -> None:
        self.pending = 0


@dataclass
class _Unacked:
    """Sent-but-unacknowledged entries, pruned by heartbeat acks."""

    entries: Deque[Tuple[int, WeblogEntry]] = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.entries)


class SocketShardWorker:
    """Parent-side handle for one socket shard.

    Presents the exact surface :class:`~repro.serving.supervisor.
    ShardSupervisor` supervises (``state``/``alive``/``restarts``/
    ``error``/``heartbeat_s``/``restart()``/``queue``) plus the two
    network-only affordances the three-state health model needs:
    ``connection_alive`` (partitioned vs dead) and
    :meth:`quarantine_backlog` (shed a partitioned shard's unsent
    backlog into the DLQ *without* restarting it).

    Parameters
    ----------
    config:
        The worker's :class:`NetShardConfig` (kill + partition budget
        included).
    queue:
        Parent-side ingest queue; survives restarts and reconnects.
    mode:
        ``"spawn"`` — fork/spawn a worker process over loopback and
        connect to it; ``"inproc"`` — run the worker as a thread of
        this process; ``"remote"`` — connect to ``address``, shipping
        the config (model included) inside ``hello``.
    address:
        ``(host, port)`` of an externally managed worker
        (``mode="remote"`` only).
    opts:
        Transport tuning (:class:`SocketOpts`).
    slow_link:
        Optional deterministic delay callable ``(seq) -> seconds``
        applied before each entries frame (the fault plan's
        ``slow_link`` spec).
    """

    def __init__(
        self,
        config: NetShardConfig,
        queue: BoundedQueue,
        dead_letters: DeadLetterQueue,
        mode: str = "spawn",
        address: Optional[Tuple[str, int]] = None,
        on_diagnosis: Optional[Callable[[SessionDiagnosis], None]] = None,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        on_provisional: Optional[
            Callable[[ProvisionalDiagnosis], None]
        ] = None,
        fold: Optional[Callable[[Dict], None]] = None,
        faults=None,
        opts: Optional[SocketOpts] = None,
        slow_link: Optional[Callable[[int], float]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if mode not in ("spawn", "inproc", "remote"):
            raise ValueError(f"unknown netshard mode {mode!r}")
        if mode == "remote" and address is None:
            raise ValueError("remote mode needs an (host, port) address")
        self.index = config.index
        self.config = config
        self.queue = queue
        self.dead_letters = dead_letters
        self.mode = mode
        self.address = address
        self.opts = opts if opts is not None else SocketOpts()
        self._on_diagnosis = on_diagnosis
        self._on_alarm = on_alarm
        self._on_provisional = on_provisional
        self._fold = fold
        self._faults = faults
        self._slow_link = slow_link
        self._mp = (
            mp.get_context(start_method or _default_start_method())
            if mode == "spawn"
            else None
        )
        self.monitor = _RemoteMonitorView()
        self.batcher = _RemoteBatcherView()
        self.diagnoses: List[SessionDiagnosis] = []
        self.alarms: List[Alarm] = []
        self.provisional: List[ProvisionalDiagnosis] = []
        self._early_report: Optional[ConvergenceReport] = None
        self.entries_processed = 0
        self.quarantined = 0
        self.restarts = 0
        self.reconnects = 0
        self.error: Optional[BaseException] = None
        self.state = "created"
        self.heartbeat_s = 0.0
        self._connection_alive = False
        #: Blast radius of a worker death: every subscriber ever shipped.
        self._seen_subscribers: Set[str] = set()
        self._kill_times_left = config.kill_times
        self._entries_base = 0
        self._quarantined_base = 0
        self._token = f"svc-{os.getpid()}-{id(self):x}"
        # Self-launched workers get a fresh random key handed over out
        # of band (spawn args / thread kwargs) — authenticated with
        # zero configuration.  Remote workers must share opts.auth_key;
        # None degrades to the empty (unauthenticated) key, documented
        # as loopback/trusted-link only.
        self._auth_key = (
            (self.opts.auth_key or b"")
            if mode == "remote"
            else secrets.token_bytes(16)
        )
        #: Worker state epoch from hello_ack; a changed incarnation on
        #: reconnect means a different worker process answered at the
        #: same address (state lost), whatever its recv_seq claims.
        self._worker_incarnation: Optional[int] = None
        self._seq = 0
        self._acked_seq = 0
        self._unacked = _Unacked()
        self._unacked_lock = threading.Lock()
        self._received = {"diagnoses": 0, "alarms": 0, "provisional": 0, "letters": 0}
        self._stream: Optional[FrameStream] = None
        self._stream_lock = threading.Lock()
        self._connected = threading.Event()
        self._stop = threading.Event()
        self._drain_wanted = False
        self._drained = False
        self._death_report: Optional[Dict] = None
        self._process = None
        self._worker_thread: Optional[threading.Thread] = None
        self._worker_port: Optional[int] = None
        self._sender: Optional[threading.Thread] = None
        self._receiver: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._receiver is not None and self._receiver.is_alive()

    @property
    def connection_alive(self) -> bool:
        """True while the transport socket is believed usable.

        The supervisor's partitioned-vs-dead discriminator: a stale
        heartbeat over a *live* connection is a partition (quarantine,
        do not restart); a stale heartbeat with the connection gone is
        a reconnect in flight that will either recover or fail into
        ``state == "failed"``.
        """
        return self._connection_alive

    def early_report(self) -> Optional[ConvergenceReport]:
        return self._early_report

    def heartbeat_age_s(self, now: Optional[float] = None) -> float:
        if self.heartbeat_s == 0.0:
            return 0.0
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.heartbeat_s)

    def start(self) -> None:
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        try:
            self._launch_worker()
            self._establish(resume=False)
        except (ShardUnreachable, FrameError, OSError) as exc:
            # Never raise out of start(): an unreachable shard is a
            # *supervised* failure — restart budget, then circuit.
            self.error = ShardUnreachable(
                f"shard {self.index} unreachable at start: {exc}"
            )
            self.state = "failed"
            return
        self._start_threads()

    def restart(self) -> None:
        """Stand up a replacement worker over the surviving parent queue.

        Spawn/inproc modes launch a fresh worker (the dead one's state
        is gone — the process-death blast radius); remote mode
        re-attempts the connection with a full (model-carrying) hello,
        which reaches whatever the operator restarted at that address.
        The fault plan's remaining kill budget rides in the refreshed
        config so an injected kill cannot loop.
        """
        if self.alive:
            raise RuntimeError(f"shard {self.index} is alive; cannot restart")
        self._stop.set()
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout=5.0)
        self._close_stream()
        self.error = None
        self.restarts += 1
        self.monitor.tracker.open_sessions = 0
        self.batcher.pending = 0
        with self._unacked_lock:
            # The replacement worker starts empty at recv_seq 0: reset
            # the whole sequence space with it.  A stale _acked_seq
            # would make the first reconnect after the restart read as
            # "worker state lost" (recv_seq < acked) and falsely mark
            # every historically seen subscriber fault-affected —
            # _handle_death already marked the ones the dead worker
            # actually held.
            self._unacked.entries.clear()
            self._seq = 0
            self._acked_seq = 0
        self._seen_subscribers.clear()
        self._worker_incarnation = None
        self._received = {"diagnoses": 0, "alarms": 0, "provisional": 0, "letters": 0}
        self._stop = threading.Event()
        self._connected = threading.Event()
        self._drained = False
        self._drain_wanted = False
        self._death_report = None
        self.state = "running"
        self.heartbeat_s = time.monotonic()
        try:
            self._launch_worker()
            self._establish(resume=False)
        except (ShardUnreachable, FrameError, OSError) as exc:
            self.error = ShardUnreachable(
                f"shard {self.index} unreachable on restart: {exc}"
            )
            self.state = "failed"
            return
        self._start_threads()

    def join(self, timeout: Optional[float] = None) -> None:
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout)
        if self._process is not None:
            self._process.join(timeout)

    def quarantine_backlog(self, dead_letters: DeadLetterQueue) -> int:
        """Shed the unsent parent-side backlog of a partitioned shard.

        Entries already shipped (in flight or in the unacked buffer)
        are *not* touched — they will be processed when the partition
        heals, or resent by the reconnect handshake.  Only the queue
        backlog nobody has committed to is quarantined, so the shard
        itself keeps running and needs no restart.
        """
        entries = self.queue.drain_remaining()
        for entry in entries:
            dead_letters.put(
                entry,
                "partitioned",
                self.index,
                "heartbeat stale, socket alive; backlog shed without restart",
            )
        if entries and self._faults is not None:
            self._faults.mark_affected(
                {entry.subscriber_id for entry in entries}
            )
        return len(entries)

    # ------------------------------------------------------------------
    # Worker launch / connection establishment
    # ------------------------------------------------------------------

    def _launch_worker(self) -> None:
        if self.mode == "remote":
            return
        config = replace(self.config, kill_times=self._kill_times_left)
        if self.mode == "inproc":
            self._worker_thread, self._worker_port = start_inproc_worker(
                config, auth_key=self._auth_key
            )
            return
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_process_main,
            args=("127.0.0.1", 0, config, child_conn, self._auth_key),
            name=f"repro-netshard-{self.index}-r{self.restarts}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(30.0):
            parent_conn.close()
            raise ShardUnreachable(
                f"shard {self.index} worker process never reported its port"
            )
        self._worker_port = parent_conn.recv()
        parent_conn.close()
        self._process = process

    def _current_address(self) -> Tuple[str, int]:
        if self.mode == "remote":
            return self.address
        if self._worker_port is None:
            raise ShardUnreachable(f"shard {self.index} has no bound worker")
        return ("127.0.0.1", self._worker_port)

    def _establish(self, resume: bool) -> Dict:
        """Connect + hello/hello_ack handshake under the hard deadline."""
        address = self._current_address()
        opts = self.opts

        def attempt() -> socket.socket:
            return socket.create_connection(address, timeout=opts.connect_deadline_s)

        sock = retry_with_backoff(
            attempt,
            retries=1_000_000,  # the deadline is the real bound
            base_delay_s=opts.connect_backoff_s,
            max_delay_s=0.5,
            max_elapsed_s=opts.connect_deadline_s,
            retry_on=(OSError,),
            op=f"netshard{self.index}.connect",
        )
        try:
            # Mutual HMAC handshake before the first frame: the hello
            # we are about to send carries a pickled model the worker
            # will execute, so the worker must prove key possession
            # just as we must prove ours.
            answer_challenge(sock, self._auth_key)
        except (FrameError, OSError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise ShardUnreachable(
                f"shard {self.index} authentication failed: {exc}"
            ) from exc
        stream = FrameStream(
            sock,
            max_frame_bytes=opts.max_frame_bytes,
            send_timeout_s=opts.send_timeout_s,
        )
        hello: Dict = {
            "token": self._token,
            "shard": self.index,
            "resume": resume,
            "out_diagnoses": self._received["diagnoses"],
            "out_alarms": self._received["alarms"],
            "out_provisional": self._received["provisional"],
            "out_letters": self._received["letters"],
        }
        if self.mode == "remote":
            hello["config"] = replace(
                self.config, kill_times=self._kill_times_left
            )
        try:
            stream.send("hello", hello)
            ack = stream.recv(timeout=_HELLO_TIMEOUT_S)
        except (FrameError, OSError) as exc:
            stream.close()
            raise ShardUnreachable(f"handshake failed: {exc}") from exc
        if ack is None or ack[0] != "hello_ack":
            stream.close()
            raise ShardUnreachable(f"expected hello_ack, got {ack!r}")
        if not resume:
            self._worker_incarnation = ack[1].get("incarnation")
        with self._stream_lock:
            self._stream = stream
        self._connection_alive = True
        self.heartbeat_s = time.monotonic()
        return ack[1]

    def _close_stream(self) -> None:
        self._connection_alive = False
        self._connected.clear()
        with self._stream_lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def _start_threads(self) -> None:
        self._connected.set()
        self._receiver = threading.Thread(
            target=self._recv_loop,
            name=f"repro-netshard-{self.index}-recv",
            daemon=True,
        )
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"repro-netshard-{self.index}-send",
            daemon=True,
        )
        self._receiver.start()
        self._sender.start()

    # ------------------------------------------------------------------
    # Sender (parent queue → socket)
    # ------------------------------------------------------------------

    def _send_loop(self) -> None:
        opts = self.opts
        stop = self._stop
        while not stop.is_set():
            if not self._connected.wait(timeout=_POLL_S):
                continue
            with self._unacked_lock:
                backpressured = len(self._unacked) >= opts.max_unacked
            if backpressured:
                # The worker is not acking (partitioned or slow): stop
                # pulling so backpressure reaches the ingest queue —
                # where the supervisor can quarantine it if need be.
                time.sleep(_POLL_S)
                continue
            batch: List[WeblogEntry] = []
            closed = False
            try:
                batch.append(self.queue.get(timeout=_POLL_S))
                while len(batch) < _SEND_BATCH:
                    batch.append(self.queue.get(timeout=0))
            except QueueEmpty:
                pass
            except QueueClosed:
                closed = True
            if batch:
                with self._unacked_lock:
                    base_seq = self._seq + 1
                    for entry in batch:
                        self._seq += 1
                        self._unacked.entries.append((self._seq, entry))
                        self._seen_subscribers.add(entry.subscriber_id)
                self._send_entries(base_seq, batch)
            if closed:
                self._drain_wanted = True
                if self._send_control("drain", {}):
                    return
                # Connection down: the receiver's reconnect will resend
                # the drain; keep looping so a later resend can happen
                # here too if the reconnect beat us to the flag.
                time.sleep(_POLL_S)
                if self._drained or self.state == "failed":
                    return

    def _send_entries(self, base_seq: int, batch: List[WeblogEntry]) -> None:
        if self._slow_link is not None:
            delay = self._slow_link(base_seq)
            if delay > 0:
                time.sleep(delay)
        # Gate on _connected, which a reconnect sets only *after* the
        # unacked gap has been resent — reading self._stream alone
        # could grab the fresh stream _establish installed mid-
        # reconnect and deliver this (higher-seq) batch before the
        # gap, tricking the worker's watermark dedup into silently
        # skipping the resent lower-seq entries.  The gate must come
        # after the slow_link nap for the same reason.  Skipping is
        # always safe: the batch is already in the unacked buffer, so
        # the in-flight reconnect resends it in order.
        if not self._connected.is_set():
            return
        with self._stream_lock:
            stream = self._stream
        if stream is None:
            return  # already in the unacked buffer; reconnect resends
        try:
            stream.send("entries", {"base_seq": base_seq, "entries": batch})
        except (FrameError, OSError):
            # Entries are safe in the unacked buffer; flag the drop and
            # let the receiver drive the reconnect.
            self._connected.clear()

    def _send_control(self, kind: str, body: Dict) -> bool:
        stream = self._stream
        if stream is None or not self._connected.is_set():
            return False
        try:
            stream.send(kind, body)
            return True
        except (FrameError, OSError):
            self._connected.clear()
            return False

    # ------------------------------------------------------------------
    # Receiver (socket → results/heartbeats), reconnect, death
    # ------------------------------------------------------------------

    def _recv_loop(self) -> None:
        opts = self.opts
        while not self._stop.is_set():
            stream = self._stream
            if stream is None:
                time.sleep(_POLL_S)
                continue
            try:
                msg = stream.recv(timeout=opts.read_timeout_s)
            except (FrameError, OSError) as exc:
                if self._drained or self._stop.is_set():
                    return
                if self._try_reconnect(exc):
                    continue
                self._handle_death(exc)
                return
            if msg is None:
                continue
            self.heartbeat_s = time.monotonic()
            kind, payload = msg
            if kind == "out":
                self._apply_out(payload)
            elif kind == "registry":
                if self._fold is not None:
                    self._fold(payload)
            elif kind == "hb":
                self.monitor.tracker.open_sessions = payload["open_sessions"]
                self.batcher.pending = payload["pending"]
                self._prune_unacked(payload["recv_seq"])
            elif kind == "dying":
                self._death_report = payload
            elif kind == "drained":
                self._apply_drained(payload)
                return

    def _prune_unacked(self, recv_seq: int) -> None:
        with self._unacked_lock:
            self._acked_seq = max(self._acked_seq, recv_seq)
            entries = self._unacked.entries
            while entries and entries[0][0] <= recv_seq:
                entries.popleft()

    def _try_reconnect(self, cause: BaseException) -> bool:
        """Reconnect-and-resume under the deadline; False means dead.

        The session-sequence handshake makes this lossless: the worker
        reports the highest entry sequence it accepted, the unacked
        buffer is pruned to that watermark, and the remainder is
        resent in order before the sender resumes — no duplicate, no
        gap, no regressed per-subscriber timestamp.
        """
        self._close_stream()
        if self._process is not None and not self._process.is_alive():
            return False  # the worker is gone, not the network
        _LOG.warning(
            "netshard_reconnecting", shard=self.index, cause=repr(cause)
        )
        try:
            ack = self._establish(resume=True)
        except (ShardUnreachable, FrameError, OSError):
            return False
        recv_seq = int(ack.get("recv_seq", 0))
        incarnation = ack.get("incarnation")
        state_lost = recv_seq < self._acked_seq or (
            self._worker_incarnation is not None
            and incarnation != self._worker_incarnation
        )
        self._worker_incarnation = incarnation
        with self._unacked_lock:
            if state_lost:
                # The worker lost state underneath us (fresh process at
                # the same address — regressed watermark or changed
                # incarnation): results so far are kept, but every
                # subscriber shipped there may now diverge.
                if self._faults is not None and self._seen_subscribers:
                    self._faults.mark_affected(self._seen_subscribers)
                _LOG.error(
                    "netshard_worker_state_lost",
                    shard=self.index,
                    acked=self._acked_seq,
                    worker_recv=recv_seq,
                )
            self._acked_seq = recv_seq
            entries = self._unacked.entries
            while entries and entries[0][0] <= recv_seq:
                entries.popleft()
            pending = list(entries)
        stream = self._stream
        try:
            for seq, entry in pending:
                stream.send("entries", {"base_seq": seq, "entries": [entry]})
            if self._drain_wanted and not self._drained:
                stream.send("drain", {})
        except (FrameError, OSError):
            self._close_stream()
            return False
        if pending:
            _RESENT.labels(shard=str(self.index)).inc(len(pending))
        self.reconnects += 1
        _RECONNECTS.labels(shard=str(self.index)).inc()
        get_recorder().record(
            "shard_reconnected",
            shard=self.index,
            resent=len(pending),
            recv_seq=recv_seq,
        )
        _LOG.info(
            "netshard_resumed",
            shard=self.index,
            resent=len(pending),
            recv_seq=recv_seq,
        )
        self._connected.set()
        return True

    def drop_connection_for_test(self) -> None:
        """Abruptly close the transport (chaos/testing hook).

        Simulates a mid-stream network blip: the next recv/send fails,
        and the receiver drives the reconnect-and-resume handshake.
        """
        with self._stream_lock:
            if self._stream is not None:
                self._stream.close()

    # ------------------------------------------------------------------
    # Message application (receiver thread only)
    # ------------------------------------------------------------------

    def _fire(self, callback, payload, name: str) -> None:
        if callback is None:
            return
        try:
            callback(payload)
        except Exception:
            self.monitor.callback_errors += 1
            _LOG.exception(
                "netshard_callback_failed", shard=self.index, callback=name
            )

    def _apply_out(self, out: Dict) -> None:
        for diagnosis in out["diagnoses"]:
            self.diagnoses.append(diagnosis)
            self._fire(self._on_diagnosis, diagnosis, "on_diagnosis")
        for alarm in out["alarms"]:
            self.alarms.append(alarm)
            self._fire(self._on_alarm, alarm, "on_alarm")
        for provisional in out.get("provisional", ()):
            self.provisional.append(provisional)
            self._fire(self._on_provisional, provisional, "on_provisional")
        for entry, reason, detail in out["letters"]:
            self.dead_letters.put(entry, reason, self.index, detail)
        self._received["diagnoses"] += len(out["diagnoses"])
        self._received["alarms"] += len(out["alarms"])
        self._received["provisional"] += len(out.get("provisional", ()))
        self._received["letters"] += len(out["letters"])
        self.entries_processed = self._entries_base + out["entries_processed"]
        self.quarantined = self._quarantined_base + out["quarantined"]

    def _apply_drained(self, payload: Dict) -> None:
        self.monitor.health.update(payload["health"])
        report = payload.get("early_report")
        if report is not None:
            self._early_report = (
                report
                if self._early_report is None
                else self._early_report.merge(report)
            )
        self.monitor.tracker.open_sessions = 0
        self.batcher.pending = 0
        self._drained = True
        self._close_stream()
        self.state = "stopped"

    def _handle_death(self, cause: BaseException) -> None:
        """Reconnect deadline spent (or the worker process is gone)."""
        self._close_stream()
        if self._process is not None:
            self._process.join(timeout=5.0)
        report = self._death_report or {}
        kills = int(report.get("kills", 0))
        if kills:
            self._kill_times_left = max(0, self._kill_times_left - kills)
            if self._faults is not None:
                self._faults.note_remote_kills(self.index, kills)
        if self._faults is not None and self._seen_subscribers:
            self._faults.mark_affected(self._seen_subscribers)
        detail = report.get("error") or repr(cause)
        self.error = ShardConnectionLost(
            f"shard {self.index} connection lost beyond recovery: {detail}"
        )
        self._entries_base = self.entries_processed
        self._quarantined_base = self.quarantined
        get_recorder().record(
            "shard_worker_died", shard=self.index, error=repr(self.error)
        )
        _LOG.error(
            "netshard_worker_dead", shard=self.index, error=detail
        )
        # Written last: the supervisor reacts to "failed" and must see
        # the error and accounting when it does.
        self.state = "failed"
