"""Prometheus-style baseline (Aggarwal et al., HotMobile 2014 [15]).

The paper positions its stall model against Prometheus: "the achieved
accuracy was approximately 84% for a binary classification" on
unencrypted traffic, using only QoS-style network metrics and a single
Buffering-Ratio indicator.

This baseline reproduces that design point: a *binary*
(stalled / not stalled) classifier over transport-layer QoS summary
statistics only — no chunk-size or chunk-timing features, which are the
paper's key addition.  Comparing it with the 3-class chunk-aware model
reproduces the paper's claim that the proposed model "not only achieves
much higher accuracy but it also can predict the severity".

Naming note: this module is the Prometheus *baseline classifier* from
the QoE literature and has nothing to do with the Prometheus
*monitoring system* — the metrics exporter for the latter lives in
:mod:`repro.obs.exposition` (deliberately not named ``prometheus`` so
neither module shadows the other).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.evaluation import balanced_train_full_test, evaluate_model
from repro.core.features import build_stall_matrix, stall_feature_names
from repro.datasets.schema import SessionRecord
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import ClassificationReport

__all__ = ["PrometheusBaseline", "BINARY_LABELS"]

BINARY_LABELS = ("not stalled", "stalled")

#: QoS metric prefixes Prometheus-style systems rely on (no chunk
#: application-layer features).
_QOS_PREFIXES = (
    "RTT minimum",
    "RTT average",
    "RTT maximum",
    "BDP",
    "BIF avg",
    "BIF maximum",
    "packet loss",
    "packet retransmissions",
)


def _qos_indices() -> List[int]:
    names = stall_feature_names()
    return [
        i
        for i, name in enumerate(names)
        if name.startswith(_QOS_PREFIXES)
    ]


class PrometheusBaseline:
    """Binary QoS-only stall classifier.

    Parameters
    ----------
    n_estimators / random_state:
        Forest configuration (kept identical to the paper's model so
        the comparison isolates the feature set and label granularity).
    n_jobs:
        Worker processes for feature builds (``None``/1 serial, ``-1``
        all cores); values are identical for any setting.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        random_state: int = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.random_state = random_state
        self.n_jobs = n_jobs
        self._indices = _qos_indices()
        self._model: Optional[RandomForestClassifier] = None
        self.train_report_: Optional[ClassificationReport] = None

    def labels_for(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Binary stalled / not-stalled ground truth."""
        out = []
        for record in records:
            rr = record.rebuffering_ratio()
            out.append("stalled" if rr > 0 else "not stalled")
        return np.array(out)

    def _features_of(self, records: Sequence[SessionRecord]) -> np.ndarray:
        X, _ = build_stall_matrix(records, n_jobs=self.n_jobs)
        return X[:, self._indices]

    def fit(self, records: Sequence[SessionRecord]) -> "PrometheusBaseline":
        """Balanced-train / full-test on the QoS feature block."""
        y = self.labels_for(records)
        self._model, self.train_report_ = balanced_train_full_test(
            lambda: RandomForestClassifier(
                n_estimators=self.n_estimators,
                min_samples_leaf=3,
                random_state=self.random_state,
            ),
            self._features_of(records),
            y,
            labels=list(BINARY_LABELS),
            random_state=self.random_state,
        )
        return self

    def predict(self, records: Sequence[SessionRecord]) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("baseline is not fitted; call fit() first")
        return self._model.predict(self._features_of(records))

    def evaluate(
        self, records: Sequence[SessionRecord]
    ) -> ClassificationReport:
        if self._model is None:
            raise RuntimeError("baseline is not fitted; call fit() first")
        y = self.labels_for(records)
        return evaluate_model(
            self._model,
            self._features_of(records),
            y,
            labels=list(BINARY_LABELS),
        )

    def cross_validate(
        self, records: Sequence[SessionRecord], n_splits: int = 10
    ) -> ClassificationReport:
        """Honest k-fold CV report (no test instance seen in training)."""
        from repro.ml.balance import oversample
        from repro.ml.crossval import cross_validate as run_cv

        y = self.labels_for(records)
        X = self._features_of(records)
        smallest = int(np.bincount(np.unique(y, return_inverse=True)[1]).min())
        splits = max(2, min(n_splits, smallest))
        return run_cv(
            lambda: RandomForestClassifier(
                n_estimators=self.n_estimators,
                min_samples_leaf=3,
                random_state=self.random_state,
            ),
            X,
            y,
            n_splits=splits,
            random_state=self.random_state,
            balance=lambda Xb, yb: oversample(
                Xb, yb, random_state=self.random_state
            ),
            labels=list(BINARY_LABELS),
        )
