"""Baseline systems the paper compares against."""

from .prometheus import BINARY_LABELS, PrometheusBaseline

__all__ = ["PrometheusBaseline", "BINARY_LABELS"]
