"""Bounded retry with exponential backoff.

The recovery primitive the rest of the resilience layer leans on:
model hot-reloads (an operator copying a new file into place is
mid-write for a moment), snapshot/model writes (transient filesystem
errors), and anything else where the second attempt is usually the one
that works.

Deliberately deterministic — no jitter — so a retried operation under
a seeded fault plan behaves identically run to run.  Every retry is
counted in ``repro_faults_retries_total{op}`` and logged; the *caller*
decides what exhaustion means (the last exception is re-raised).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.obs.logs import get_logger
from repro.obs.registry import get_registry

__all__ = ["retry_with_backoff"]

_LOG = get_logger("faults.retry")

_RETRIES = get_registry().counter(
    "repro_faults_retries_total",
    "Operations retried after a transient failure, by operation.",
    labelnames=("op",),
)

T = TypeVar("T")


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    base_delay_s: float = 0.05,
    factor: float = 2.0,
    max_delay_s: float = 2.0,
    max_elapsed_s: Optional[float] = None,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    op: str = "default",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the retry budget is spent.

    Parameters
    ----------
    fn:
        Zero-argument operation.  Its return value is passed through.
    retries:
        Additional attempts after the first (``retries=3`` means up to
        4 calls).  ``0`` degenerates to a plain call.
    base_delay_s, factor, max_delay_s:
        Backoff schedule: attempt *k* (1-based) sleeps
        ``min(base_delay_s * factor**(k-1), max_delay_s)`` before
        retrying.
    max_elapsed_s:
        Hard cap on *total* time spent (attempts + backoff), measured
        on ``clock`` from the first call.  Without it, a large
        ``retries`` with growing backoff can silently exceed any
        caller SLO — ``retries=10`` at the defaults already waits over
        14 seconds.  With it, the last exception is re-raised as soon
        as the budget is spent, and a sleep is clamped so it never
        overshoots the deadline.  ``None`` keeps the attempt-count
        bound only.
    retry_on:
        Exception types worth retrying.  Anything else propagates
        immediately — a programming error is not transitory.
    op:
        Label for the retry counter and log lines.
    sleep:
        Injectable sleep (tests pass a recorder instead of sleeping).
    clock:
        Injectable monotonic clock for the ``max_elapsed_s`` deadline.
    on_retry:
        Optional hook ``(attempt, exception)`` invoked before each
        sleep.

    Raises the final exception unchanged once either budget (attempts
    or elapsed time) is exhausted.  Deterministic: no jitter, so a
    retried operation under a seeded fault plan behaves identically
    run to run.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if max_elapsed_s is not None and max_elapsed_s <= 0:
        raise ValueError("max_elapsed_s must be positive")
    started = clock()
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt > retries:
                raise
            delay = min(base_delay_s * factor ** (attempt - 1), max_delay_s)
            if max_elapsed_s is not None:
                remaining = max_elapsed_s - (clock() - started)
                if remaining <= 0:
                    _LOG.warning(
                        "retry_deadline_exhausted",
                        op=op,
                        attempt=attempt,
                        max_elapsed_s=max_elapsed_s,
                        error=str(exc),
                    )
                    raise
                # Never sleep past the deadline: the final attempt runs
                # with whatever budget is left instead of overshooting.
                delay = min(delay, remaining)
            _RETRIES.labels(op=op).inc()
            _LOG.warning(
                "retrying",
                op=op,
                attempt=attempt,
                retries=retries,
                delay_s=round(delay, 4),
                error=str(exc),
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(delay)
