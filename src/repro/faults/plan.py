"""Declarative, seedable fault plans.

A :class:`FaultPlan` is a frozen description of *which* failures a run
should experience — record corruption, clock skew, drops, duplicates,
reorders, worker kills, model-reload failures — with every stochastic
choice pinned to one seed.  The plan is pure data: it does nothing by
itself, and a plan with every knob at zero (:attr:`FaultPlan.is_noop`)
is the determinism baseline — running it must be bit-identical to not
having a fault layer at all.

Plans parse from three interchangeable spec forms (the CLI's
``serve-replay --faults SPEC`` accepts any of them):

* a compact string — ``"corrupt=0.02,kill_shard=1@100,seed=7"``;
* inline JSON — ``'{"corrupt_fraction": 0.02, "kill_shard": 1}'``;
* a path to a JSON file holding the same object.

The :class:`~repro.faults.injector.FaultInjector` executes a plan.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FaultPlan"]

#: compact-spec key → (dataclass field, value parser)
_COMPACT_KEYS = {
    "seed": ("seed", int),
    "corrupt": ("corrupt_fraction", float),
    "drop": ("drop_fraction", float),
    "duplicate": ("duplicate_fraction", float),
    "reorder": ("reorder_fraction", float),
    "skew": ("skew_fraction", float),
    "skew_s": ("skew_s", float),
    "kill_times": ("kill_times", int),
    "reload_fail": ("reload_failures", int),
    "reload_delay": ("reload_delay_s", float),
}

#: Compact keys with their own "value@value:value" grammar.
_STRUCTURED_KEYS = ("kill_shard", "skew", "partition_shard", "slow_link")

_FRACTION_FIELDS = (
    "corrupt_fraction",
    "drop_fraction",
    "duplicate_fraction",
    "reorder_fraction",
    "skew_fraction",
)


@dataclass(frozen=True)
class FaultPlan:
    """One run's worth of injectable failures, fully deterministic.

    Parameters
    ----------
    seed:
        Seed for every per-record random draw.  Two injectors built
        from equal plans corrupt exactly the same records.
    corrupt_fraction:
        Fraction of trace records to garble (negative sizes, NaN
        timestamps/metrics — the modes cycle deterministically).
    drop_fraction, duplicate_fraction, reorder_fraction:
        Fractions of records to silently drop, emit twice, or swap
        with their successor (collector loss / retransmission /
        interleaving jitter).
    skew_fraction, skew_s:
        Fraction of records whose timestamp is shifted *backwards* by
        ``skew_s`` seconds — a skewed collector clock.
    kill_shard, kill_at_entry, kill_times:
        Kill the worker thread of shard ``kill_shard`` when it picks up
        its ``kill_at_entry``-th record, ``kill_times`` times in total
        (several kills in a row exercise the restart budget and the
        circuit breaker).  ``None`` disables.
    partition_shard, partition_at_entry, partition_secs:
        Partition the *socket*-backed shard ``partition_shard`` after
        it has accepted its ``partition_at_entry``-th record: the
        worker goes silent — no heartbeats, no reads — for
        ``partition_secs`` seconds while its TCP connection stays
        alive.  The reachable-but-slow failure mode pipes never
        exhibit; the supervisor must classify it *partitioned* (not
        dead) and quarantine without restarting.  ``None`` disables.
        Compact form: ``partition_shard=IDX@ENTRY:SECS``.
    slow_link_fraction, slow_link_ms:
        Delay a deterministic ``slow_link_fraction`` of the socket
        transport's entry batches by ``slow_link_ms`` milliseconds
        before sending — degraded-link latency without loss, so the
        diagnosis stream must stay bit-identical.  Compact form:
        ``slow_link=FRAC:MS``.
    reload_failures, reload_delay_s:
        Make the next N model reload attempts fail with ``OSError``,
        and/or stall every reload by a fixed delay.
    """

    seed: int = 0
    corrupt_fraction: float = 0.0
    drop_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    reorder_fraction: float = 0.0
    skew_fraction: float = 0.0
    skew_s: float = 120.0
    kill_shard: Optional[int] = None
    kill_at_entry: int = 1
    kill_times: int = 1
    partition_shard: Optional[int] = None
    partition_at_entry: int = 1
    partition_secs: float = 2.0
    slow_link_fraction: float = 0.0
    slow_link_ms: float = 5.0
    reload_failures: int = 0
    reload_delay_s: float = 0.0

    def __post_init__(self) -> None:
        for name in _FRACTION_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.skew_s < 0:
            raise ValueError("skew_s must be >= 0")
        if self.kill_shard is not None and self.kill_shard < 0:
            raise ValueError("kill_shard must be a shard index >= 0")
        if self.kill_at_entry < 1:
            raise ValueError("kill_at_entry must be >= 1")
        if self.kill_times < 1:
            raise ValueError("kill_times must be >= 1")
        if self.partition_shard is not None and self.partition_shard < 0:
            raise ValueError("partition_shard must be a shard index >= 0")
        if self.partition_at_entry < 1:
            raise ValueError("partition_at_entry must be >= 1")
        if self.partition_secs <= 0:
            raise ValueError("partition_secs must be positive")
        if not 0.0 <= self.slow_link_fraction <= 1.0:
            raise ValueError(
                f"slow_link_fraction must be in [0, 1], "
                f"got {self.slow_link_fraction!r}"
            )
        if self.slow_link_ms < 0:
            raise ValueError("slow_link_ms must be >= 0")
        if self.reload_failures < 0:
            raise ValueError("reload_failures must be >= 0")
        if self.reload_delay_s < 0:
            raise ValueError("reload_delay_s must be >= 0")

    # ------------------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        """True when executing this plan can never change anything."""
        return (
            self.corrupt_fraction == 0.0
            and self.drop_fraction == 0.0
            and self.duplicate_fraction == 0.0
            and self.reorder_fraction == 0.0
            and self.skew_fraction == 0.0
            and self.kill_shard is None
            and self.partition_shard is None
            and self.slow_link_fraction == 0.0
            and self.reload_failures == 0
            and self.reload_delay_s == 0.0
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Human-readable one-liner of the non-default knobs."""
        if self.is_noop:
            return "no faults"
        parts = []
        for name in _FRACTION_FIELDS:
            value = getattr(self, name)
            if value:
                parts.append(f"{name.replace('_fraction', '')}={value:g}")
        if self.skew_fraction:
            parts.append(f"skew_s={self.skew_s:g}")
        if self.kill_shard is not None:
            parts.append(
                f"kill shard {self.kill_shard}@{self.kill_at_entry}"
                + (f" x{self.kill_times}" if self.kill_times > 1 else "")
            )
        if self.partition_shard is not None:
            parts.append(
                f"partition shard {self.partition_shard}"
                f"@{self.partition_at_entry} for {self.partition_secs:g}s"
            )
        if self.slow_link_fraction:
            parts.append(
                f"slow_link={self.slow_link_fraction:g}"
                f":{self.slow_link_ms:g}ms"
            )
        if self.reload_failures:
            parts.append(f"reload_failures={self.reload_failures}")
        if self.reload_delay_s:
            parts.append(f"reload_delay={self.reload_delay_s:g}s")
        return ", ".join(parts)

    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise ValueError(
                f"unknown fault plan key(s) {unknown}; valid: {sorted(fields)}"
            )
        return cls(**payload)

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """A plan from a compact string, inline JSON, or a JSON file path."""
        if spec is None or not spec.strip():
            return cls()
        spec = spec.strip()
        if os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as handle:
                spec = handle.read().strip()
        if spec.startswith("{"):
            try:
                payload = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ValueError(f"fault spec is not valid JSON: {exc}") from exc
            return cls.from_dict(payload)
        return cls._parse_compact(spec)

    @classmethod
    def _parse_compact(cls, spec: str) -> "FaultPlan":
        values: Dict = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad fault spec token {token!r}: expected key=value"
                )
            key, _, raw = token.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in _COMPACT_KEYS and key not in _STRUCTURED_KEYS:
                raise ValueError(
                    f"unknown fault spec key {key!r}; valid: "
                    f"{sorted(_COMPACT_KEYS) + sorted(_STRUCTURED_KEYS)}"
                )
            try:
                if key == "kill_shard":
                    # "kill_shard=1@100": shard index @ record count
                    shard, _, at = raw.partition("@")
                    values["kill_shard"] = int(shard)
                    if at:
                        values["kill_at_entry"] = int(at)
                elif key == "partition_shard":
                    # "partition_shard=1@100:2.5":
                    # shard index @ record count : silent seconds
                    shard, _, rest = raw.partition("@")
                    values["partition_shard"] = int(shard)
                    if rest:
                        at, _, secs = rest.partition(":")
                        if at:
                            values["partition_at_entry"] = int(at)
                        if secs:
                            values["partition_secs"] = float(secs)
                elif key == "slow_link":
                    # "slow_link=0.1:5": fraction of batches [: delay ms]
                    fraction, _, delay = raw.partition(":")
                    values["slow_link_fraction"] = float(fraction)
                    if delay:
                        values["slow_link_ms"] = float(delay)
                elif key == "skew":
                    # "skew=0.01:120": fraction [: backwards-skew seconds]
                    fraction, _, magnitude = raw.partition(":")
                    values["skew_fraction"] = float(fraction)
                    if magnitude:
                        values["skew_s"] = float(magnitude)
                else:
                    field, parser = _COMPACT_KEYS[key]
                    values[field] = parser(raw)
            except ValueError as exc:
                raise ValueError(
                    f"bad value for fault spec key {key!r}: {raw!r}"
                ) from exc
        return cls(**values)
