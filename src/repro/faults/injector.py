"""Fault execution: apply a :class:`~repro.faults.plan.FaultPlan` to a run.

One :class:`FaultInjector` owns all the randomness and all the
bookkeeping for a chaos run:

* :meth:`plan_trace` rewrites a weblog trace record by record —
  corrupting fields past ``__init__`` validation (exactly what a
  garbled collector line looks like to a parser that trusts its
  input), skewing clocks, dropping, duplicating and reordering;
* :meth:`shard_fault_hook` plugs into the serving shards and raises
  :class:`InjectedFault` inside a chosen worker thread at a chosen
  record index — the supervised-restart and circuit-breaker drill;
* :meth:`reload_gate` plugs into the model manager and delays or
  fails hot-reload attempts.

Everything injected is logged in :attr:`FaultInjector.injections` and
every subscriber whose stream was touched lands in
:attr:`affected_subscribers` — which is what lets a chaos test assert
the strong property: *sessions of untouched subscribers are
bit-identical to a fault-free run*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.capture.weblog import WeblogEntry
from repro.obs import get_logger, get_recorder

from .plan import FaultPlan

__all__ = ["InjectedFault", "Injection", "FaultInjector"]

_LOG = get_logger("faults.injector")


class InjectedFault(RuntimeError):
    """Raised inside a component on the injector's order (never in prod)."""


@dataclass(frozen=True)
class Injection:
    """One fault the injector actually committed."""

    kind: str
    index: int
    subscriber_id: str
    detail: str = ""


def _unchecked_replace(entry: WeblogEntry, **overrides) -> WeblogEntry:
    """Clone an entry with fields overridden, *bypassing* validation.

    ``dataclasses.replace`` would re-run ``__post_init__`` and refuse
    the garbage we are deliberately producing; real malformed records
    enter systems the same way — through code paths that never
    validate.
    """
    clone = object.__new__(WeblogEntry)
    clone.__dict__.update(entry.__dict__)
    clone.__dict__.update(overrides)
    return clone


#: Corruption modes cycle in this order, so a given plan garbles a
#: reproducible mix of field-level failures.
_CORRUPTIONS = (
    ("negative_size", lambda e: _unchecked_replace(e, object_bytes=-1)),
    ("nan_timestamp", lambda e: _unchecked_replace(e, timestamp_s=float("nan"))),
    (
        "nan_transaction",
        lambda e: _unchecked_replace(e, transaction_s=float("nan")),
    ),
    (
        "negative_transaction",
        lambda e: _unchecked_replace(e, transaction_s=-1.0),
    ),
    ("nan_rtt", lambda e: _unchecked_replace(e, rtt_avg_ms=float("nan"))),
    ("negative_loss", lambda e: _unchecked_replace(e, loss_pct=-5.0)),
)


class FaultInjector:
    """Deterministic executor of one :class:`FaultPlan`.

    A fresh injector is built per run; its RNG is seeded from the plan,
    so equal plans inject equal faults into equal traces.  Thread-safe
    where it must be (the shard hook and reload gate are called from
    worker threads); :meth:`plan_trace` is single-threaded by design —
    call it before the replay starts.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        self._kills_fired = 0
        self._reload_failures_left = plan.reload_failures
        self._corruption_cursor = 0
        self._slow_sends = 0
        self.injections: List[Injection] = []
        self._affected: Set[str] = set()

    # ------------------------------------------------------------------

    @property
    def affected_subscribers(self) -> Set[str]:
        """Subscribers whose entry stream any fault touched (a copy)."""
        with self._lock:
            return set(self._affected)

    @property
    def kills_fired(self) -> int:
        with self._lock:
            return self._kills_fired

    def summary(self) -> Dict:
        """Accounting for the run, keyed by fault kind."""
        with self._lock:
            by_kind: Dict[str, int] = {}
            for injection in self.injections:
                by_kind[injection.kind] = by_kind.get(injection.kind, 0) + 1
            return {
                "plan": self.plan.describe(),
                "injected": len(self.injections),
                "by_kind": by_kind,
                "affected_subscribers": len(self._affected),
                "slow_sends": self._slow_sends,
            }

    def _record(self, kind: str, index: int, entry: WeblogEntry, detail: str = "") -> None:
        with self._lock:
            self.injections.append(
                Injection(kind, index, entry.subscriber_id, detail)
            )
            self._affected.add(entry.subscriber_id)

    # ------------------------------------------------------------------
    # Record-level faults (applied to the trace before replay)
    # ------------------------------------------------------------------

    def _corrupt(self, entry: WeblogEntry, index: int) -> WeblogEntry:
        name, mutate = _CORRUPTIONS[self._corruption_cursor % len(_CORRUPTIONS)]
        self._corruption_cursor += 1
        self._record("corrupt", index, entry, name)
        return mutate(entry)

    def plan_trace(self, entries: Sequence[WeblogEntry]) -> List[WeblogEntry]:
        """The trace with every record-level fault applied.

        A no-op plan returns the input records unchanged (the same
        objects, zero RNG draws) — the bit-identical baseline the
        determinism tests pin.
        """
        plan = self.plan
        if (
            plan.corrupt_fraction == 0.0
            and plan.drop_fraction == 0.0
            and plan.duplicate_fraction == 0.0
            and plan.reorder_fraction == 0.0
            and plan.skew_fraction == 0.0
        ):
            return list(entries)
        rng = self._rng
        out: List[WeblogEntry] = []
        for index, entry in enumerate(entries):
            if plan.drop_fraction and rng.random() < plan.drop_fraction:
                self._record("drop", index, entry)
                continue
            faulted = entry
            if plan.skew_fraction and rng.random() < plan.skew_fraction:
                faulted = _unchecked_replace(
                    faulted, timestamp_s=faulted.timestamp_s - plan.skew_s
                )
                self._record("skew", index, entry, f"-{plan.skew_s:g}s")
            if plan.corrupt_fraction and rng.random() < plan.corrupt_fraction:
                faulted = self._corrupt(faulted, index)
            out.append(faulted)
            if plan.duplicate_fraction and rng.random() < plan.duplicate_fraction:
                out.append(faulted)
                self._record("duplicate", index, entry)
        if plan.reorder_fraction:
            for index in range(len(out) - 1):
                if rng.random() < plan.reorder_fraction:
                    out[index], out[index + 1] = out[index + 1], out[index]
                    # Swapping entries of two different subscribers only
                    # changes the cross-subscriber interleaving, which
                    # the service is insensitive to by construction; a
                    # same-subscriber swap breaks that stream's order.
                    if out[index].subscriber_id == out[index + 1].subscriber_id:
                        self._record("reorder", index, out[index])
        injected = len(self.injections)
        if injected:
            _LOG.info(
                "trace_faults_planned",
                entries=len(entries),
                injected=injected,
                affected_subscribers=len(self._affected),
            )
        return out

    # ------------------------------------------------------------------
    # Component hooks (wired in by QoEService / ModelManager)
    # ------------------------------------------------------------------

    def shard_fault_hook(
        self, shard_index: int, entry: WeblogEntry, picked_up: int
    ) -> None:
        """Kill the targeted shard worker at the planned record index.

        Installed as the shard's per-entry fault hook; raises
        :class:`InjectedFault` when this pickup matches the plan, at
        most ``kill_times`` times.  The in-flight entry is lost with
        the worker — exactly the at-most-once boundary a real crash
        has — so its subscriber is marked affected.
        """
        plan = self.plan
        if plan.kill_shard is None or shard_index != plan.kill_shard:
            return
        if picked_up < plan.kill_at_entry:
            return
        with self._lock:
            if self._kills_fired >= plan.kill_times:
                return
            self._kills_fired += 1
            self.injections.append(
                Injection(
                    "kill_worker",
                    picked_up,
                    entry.subscriber_id,
                    f"shard {shard_index}",
                )
            )
            self._affected.add(entry.subscriber_id)
        get_recorder().record(
            "fault_injected",
            fault="kill_worker",
            shard=shard_index,
            picked_up=picked_up,
        )
        raise InjectedFault(
            f"injected kill: shard {shard_index} at its entry #{picked_up}"
        )

    def kill_spec_for(self, shard_index: int) -> Optional[Tuple[int, int]]:
        """The plan's ``(kill_at_entry, kill_times)`` for one shard.

        Process-backed shards cannot run :meth:`shard_fault_hook` —
        closures do not cross the spawn boundary — so the router ships
        the kill spec *by value* in the shard's config and the child
        rebuilds the hook locally.  ``None`` when this shard is not
        targeted.
        """
        plan = self.plan
        if plan.kill_shard is None or shard_index != plan.kill_shard:
            return None
        return (plan.kill_at_entry, plan.kill_times)

    def partition_spec_for(
        self, shard_index: int
    ) -> Optional[Tuple[int, float]]:
        """The plan's ``(partition_at_entry, partition_secs)`` for one shard.

        Like :meth:`kill_spec_for`, shipped by value: the socket
        worker (possibly another process or machine) triggers the
        silence locally after accepting its N-th entry.  ``None`` when
        this shard is not targeted.
        """
        plan = self.plan
        if plan.partition_shard is None or shard_index != plan.partition_shard:
            return None
        return (plan.partition_at_entry, plan.partition_secs)

    def note_partition(self, shard_index: int) -> None:
        """Account a partition the supervisor actually observed.

        Called when the three-state health model flips a shard to
        *partitioned*.  Latency-only on its own — subscribers are only
        marked affected if the quarantine path actually sheds backlog
        (that path calls :meth:`mark_affected` with the shed entries'
        subscribers).
        """
        with self._lock:
            self.injections.append(
                Injection(
                    "partition",
                    -1,
                    "",
                    f"shard {shard_index} for {self.plan.partition_secs:g}s",
                )
            )
        get_recorder().record(
            "fault_injected", fault="partition", shard=shard_index
        )

    def slow_link_delay_s(self, seq: int) -> float:
        """Deterministic per-batch send delay for the ``slow_link`` spec.

        Hash-based rather than RNG-stream-based so the draw depends
        only on ``(seed, seq)`` — reconnects and resends cannot shift
        which batches are slow.  Latency without loss: slow sends are
        *not* recorded as injections and mark nobody affected, because
        the determinism contract requires identical output under them.
        """
        plan = self.plan
        if plan.slow_link_fraction <= 0.0:
            return 0.0
        draw = (
            (seq * 0x9E3779B1 + (plan.seed + 1) * 0x85EBCA77) & 0xFFFFFFFF
        ) / 2.0**32
        if draw >= plan.slow_link_fraction:
            return 0.0
        with self._lock:
            self._slow_sends += 1
        return plan.slow_link_ms / 1000.0

    def note_remote_kills(self, shard_index: int, count: int) -> None:
        """Account kills a shard *process* reported before dying.

        The process-backend twin of the bookkeeping
        :meth:`shard_fault_hook` does in-thread: the child fires the
        injected fault on its own core and reports the count in its
        death message; the parent folds it into the shared budget so
        ``kills_fired`` and the injection log stay single-sourced.
        Clamped to the plan's ``kill_times`` (a restarted child cannot
        overdraw the budget).
        """
        if count <= 0:
            return
        with self._lock:
            actual = min(count, self.plan.kill_times - self._kills_fired)
            if actual <= 0:
                return
            self._kills_fired += actual
            for _ in range(actual):
                self.injections.append(
                    Injection(
                        "kill_worker",
                        -1,
                        "",
                        f"shard {shard_index} (process)",
                    )
                )
        get_recorder().record(
            "fault_injected",
            fault="kill_worker",
            shard=shard_index,
            remote=True,
        )

    def mark_affected(self, subscribers: Iterable[str]) -> None:
        """Widen the affected set (process death loses all shard state).

        A killed *thread* keeps its shard's tracker/health state alive
        under the replacement thread, so only the in-flight entry's
        subscriber is affected.  A killed *process* takes the whole
        shard state with it, so the parent marks every subscriber it
        ever routed there — keeping the chaos suite's
        untouched-subscribers-are-bit-identical property truthful.
        """
        with self._lock:
            self._affected.update(subscribers)

    def reload_gate(self) -> None:
        """Delay and/or fail a model reload attempt, per the plan.

        Installed as the :class:`~repro.serving.models.ModelManager`
        fault gate; runs inside the (retried) load attempt.
        """
        plan = self.plan
        if plan.reload_delay_s > 0:
            time.sleep(plan.reload_delay_s)
        with self._lock:
            if self._reload_failures_left <= 0:
                return
            self._reload_failures_left -= 1
            self.injections.append(
                Injection("reload_failure", -1, "", "injected OSError")
            )
        get_recorder().record("fault_injected", fault="reload_failure")
        raise OSError("injected model reload failure")
