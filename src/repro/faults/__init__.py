"""Fault injection and recovery primitives.

The paper's methodology is built to run *inside an operator network*,
where the dominant realities are the ones a clean simulator never
produces: truncated and garbled log records, skewed collector clocks,
stalled processes, half-written model files.  Deployment reports on
this class of system (Schmitt et al.) make the same point — the hard
part is not the model, it is surviving the input.

This package makes failure a first-class, *testable* event:

``plan``
    :class:`FaultPlan` — a frozen, seedable description of which
    faults a run experiences, parseable from a compact string, inline
    JSON or a JSON file (``serve-replay --faults SPEC``).
``injector``
    :class:`FaultInjector` — executes a plan: rewrites traces
    (corrupt/drop/duplicate/reorder/skew), kills shard workers via
    :class:`InjectedFault`, delays/fails model reloads.  Logs every
    committed fault and the set of affected subscribers, so chaos
    tests can assert untouched sessions are bit-identical to a
    fault-free run.
``retry``
    :func:`retry_with_backoff` — the bounded, deterministic retry
    helper used by model reloads and snapshot/model writes.

The matching *recovery* machinery lives where the state is:
:mod:`repro.serving.supervisor` (watchdog restarts + circuit breaker),
:mod:`repro.serving.dlq` (malformed-record quarantine) and
:class:`repro.capture.weblog.MalformedRecordError` (typed validation).
"""

from .injector import FaultInjector, InjectedFault, Injection
from .plan import FaultPlan
from .retry import retry_with_backoff

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "Injection",
    "retry_with_backoff",
]
