"""Reproduction of "Measuring Video QoE from Encrypted Traffic"
(Dimopoulos, Leontiadis, Barlet-Ros, Papagiannaki — IMC 2016).

Subpackages
-----------
``repro.core``
    The paper's contribution: stall, average-representation and
    quality-switch detectors plus the unified :class:`QoEFramework`.
``repro.ml``
    From-scratch ML substrate (Random Forest, CFS, info gain, CV).
``repro.timeseries``
    CUSUM change detection, ECDFs, summary statistics.
``repro.network``
    Cellular path + TCP transfer simulation.
``repro.streaming``
    Adaptive and progressive player simulations.
``repro.capture``
    Weblog/proxy capture, URI ground truth, encrypted views,
    session reconstruction, device instrumentation.
``repro.datasets``
    Corpus generators and dataset preparation.
``repro.baselines``
    Prometheus-style binary baseline.
``repro.experiments``
    Generators for every table and figure in the paper.
``repro.realtime``
    Online session tracking + the serial real-time monitor loop.
``repro.serving``
    Sharded, back-pressured online inference service (micro-batching,
    model hot-reload, trace replay).
"""

from .core.framework import QoEFramework, SessionDiagnosis
from .core.representation import AvgRepresentationDetector
from .core.stall import StallDetector
from .core.switching import SwitchDetector
from .realtime.monitor import RealTimeMonitor
from .serving.service import QoEService

__version__ = "1.0.0"

__all__ = [
    "QoEFramework",
    "SessionDiagnosis",
    "StallDetector",
    "AvgRepresentationDetector",
    "SwitchDetector",
    "RealTimeMonitor",
    "QoEService",
    "__version__",
]
