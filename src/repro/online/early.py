"""Early (partial-session) diagnosis with confidence and convergence.

Dubin et al. (PAPERS.md) show representation class is predictable in
real time from the first chunks; Schmitt/Bronzino et al. make the
deployment case that operators need in-session inference.  This module
closes that gap for the repro stack: :class:`EarlyPredictor` turns a
:class:`~repro.online.snapshot.StreamingSessionState` into a
*provisional* :class:`ProvisionalDiagnosis` after ``after_chunks``
chunks, long before the tracker closes the session.

**Confidence semantics.**  Each provisional label carries the forest's
vote agreement (the ``predict_proba`` mass on the winning class — the
fraction of trees voting for it) for the stall model and, when the
framework is adaptive, the representation model.  The combined
``confidence`` multiplies the weaker of those agreements by a
session-age ramp ``min(1, n_chunks / age_full_chunks)``: a unanimous
forest on 4 chunks is still only 4/20 confident, because the features
it voted on summarise a sliver of the session.  Confidence therefore
*tightens monotonically in session age* for a fixed vote split, and
reaches the raw vote agreement once the session is mature.

**Convergence accounting.**  The predictor remembers its latest
provisional labels per open session; when the session closes,
:meth:`EarlyPredictor.note_final` compares them against the final
diagnosis and folds the outcome into a :class:`ConvergenceReport`
(provisional/final agreement rates, label flip rate, chunks-to-stable
distribution) plus the ``repro_online_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.obs import get_registry
from repro.online.snapshot import StreamingSessionState

__all__ = ["ProvisionalDiagnosis", "ConvergenceReport", "EarlyPredictor"]

_REG = get_registry()
_PROVISIONAL = _REG.counter(
    "repro_online_provisional_total",
    "Provisional (partial-session) predictions emitted.",
    labelnames=("model",),
)
_FLIPS = _REG.counter(
    "repro_online_flips_total",
    "Provisional label changes between consecutive predictions.",
    labelnames=("model",),
)
_FINAL_AGREEMENT = _REG.counter(
    "repro_online_final_agreement_total",
    "Last provisional label vs final diagnosis comparisons.",
    labelnames=("model", "agree"),
)
_CHUNKS_TO_STABLE = _REG.histogram(
    "repro_online_chunks_to_stable",
    "Chunk count at which the provisional stall label last changed.",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)
_TRACKED = _REG.gauge(
    "repro_online_tracked_sessions",
    "Open sessions with at least one provisional prediction.",
)
# Pre-create the labelled children so the families appear in the
# metrics exposition even before the first flip/agreement event.
for _model in ("stall", "representation"):
    _PROVISIONAL.labels(model=_model)
    _FLIPS.labels(model=_model)
    for _agree in ("yes", "no"):
        _FINAL_AGREEMENT.labels(model=_model, agree=_agree)
del _model, _agree


@dataclass(frozen=True)
class ProvisionalDiagnosis:
    """A partial-session diagnosis, emitted while the session is open.

    ``session_id`` is the id the session *will* carry if it closes with
    enough chunks (the tracker's next per-subscriber sequence number).
    ``representation_class`` is None for non-adaptive frameworks,
    mirroring :class:`~repro.core.framework.SessionDiagnosis`.
    ``exact`` records whether the feature snapshot came from the
    bit-identical exact regime or the streaming estimators.
    """

    session_id: str
    subscriber_id: str
    n_chunks: int
    stall_class: str
    stall_confidence: float
    representation_class: Optional[str]
    representation_confidence: Optional[float]
    confidence: float
    exact: bool


@dataclass(frozen=True)
class ConvergenceReport:
    """Provisional-vs-final outcome over closed sessions.

    ``sessions`` counts closed sessions that had at least one
    provisional prediction; agreement compares the *last* provisional
    label before close against the final diagnosis.
    """

    sessions: int = 0
    predictions: int = 0
    stall_agreements: int = 0
    representation_comparisons: int = 0
    representation_agreements: int = 0
    stall_flips: int = 0
    representation_flips: int = 0
    chunks_to_stable: Tuple[int, ...] = ()

    @property
    def stall_agreement_rate(self) -> float:
        return self.stall_agreements / self.sessions if self.sessions else 0.0

    @property
    def representation_agreement_rate(self) -> float:
        if not self.representation_comparisons:
            return 0.0
        return self.representation_agreements / self.representation_comparisons

    @property
    def flip_rate(self) -> float:
        """Label changes per provisional prediction (both models)."""
        if not self.predictions:
            return 0.0
        return (self.stall_flips + self.representation_flips) / self.predictions

    @property
    def median_chunks_to_stable(self) -> float:
        if not self.chunks_to_stable:
            return 0.0
        return float(np.median(np.array(self.chunks_to_stable, dtype=float)))

    def merge(self, other: "ConvergenceReport") -> "ConvergenceReport":
        """Fold another shard's report into this one (commutative)."""
        return ConvergenceReport(
            sessions=self.sessions + other.sessions,
            predictions=self.predictions + other.predictions,
            stall_agreements=self.stall_agreements + other.stall_agreements,
            representation_comparisons=(
                self.representation_comparisons
                + other.representation_comparisons
            ),
            representation_agreements=(
                self.representation_agreements
                + other.representation_agreements
            ),
            stall_flips=self.stall_flips + other.stall_flips,
            representation_flips=(
                self.representation_flips + other.representation_flips
            ),
            chunks_to_stable=self.chunks_to_stable + other.chunks_to_stable,
        )

    def describe(self) -> str:
        return (
            f"sessions={self.sessions} predictions={self.predictions} "
            f"stall_agreement={self.stall_agreement_rate:.3f} "
            f"representation_agreement="
            f"{self.representation_agreement_rate:.3f} "
            f"flip_rate={self.flip_rate:.3f} "
            f"median_chunks_to_stable={self.median_chunks_to_stable:.1f}"
        )


@dataclass
class _SessionTrack:
    """Per-open-session provisional state."""

    session_id: str
    n_last: int = 0
    predictions: int = 0
    last_change_chunk: int = 0
    stall_class: Optional[str] = None
    representation_class: Optional[str] = None
    stall_flips: int = 0
    representation_flips: int = 0


class EarlyPredictor:
    """Emit provisional diagnoses on open sessions after ``k`` chunks.

    Parameters
    ----------
    framework:
        Anything exposing ``.stall`` / ``.representation`` detectors
        (a :class:`~repro.core.framework.QoEFramework`, or a shim).
        Reassignable — the serving layer syncs it on model hot-reload.
    after_chunks:
        Minimum chunk count before the first provisional prediction.
    min_confidence:
        Predictions below this combined confidence are still tracked
        for convergence accounting but not *emitted* to callers.
    age_full_chunks:
        Session age (in chunks) at which the age ramp saturates and
        confidence equals the raw forest vote agreement.
    predict_every:
        Re-predict every this-many chunks past ``after_chunks`` (1 =
        on every new chunk).
    """

    def __init__(
        self,
        framework,
        after_chunks: int = 4,
        min_confidence: float = 0.0,
        age_full_chunks: int = 20,
        predict_every: int = 1,
    ) -> None:
        if after_chunks < 1:
            raise ValueError("after_chunks must be >= 1")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if age_full_chunks < 1:
            raise ValueError("age_full_chunks must be >= 1")
        if predict_every < 1:
            raise ValueError("predict_every must be >= 1")
        self.framework = framework
        self.after_chunks = after_chunks
        self.min_confidence = min_confidence
        self.age_full_chunks = age_full_chunks
        self.predict_every = predict_every
        self._tracks: Dict[str, _SessionTrack] = {}
        #: Tracks whose session moved on before the final diagnosis
        #: arrived (the serving layer micro-batches diagnoses, so a
        #: session's close can reach :meth:`note_final` after its
        #: successor started predicting), keyed by session id and
        #: consumed there.  Bounded: sessions that never get a final
        #: diagnosis (discarded by the tracker) are evicted oldest-first.
        self._finished: Dict[str, _SessionTrack] = {}
        self._report = ConvergenceReport()

    # -- prediction ----------------------------------------------------

    def _vote(self, detector, vector: np.ndarray) -> Tuple[str, float]:
        """(label, vote agreement) via the same argmax as ``predict``."""
        x = vector.reshape(1, -1)[:, detector.selected_indices_]
        proba = detector._model.predict_proba(x)[0]
        winner = int(np.argmax(proba))
        label = detector._model.classes_[winner]
        if hasattr(label, "item"):
            label = label.item()
        return label, float(proba[winner])

    def predict_partial(
        self,
        state: StreamingSessionState,
        session_id: str,
        subscriber_id: str,
    ) -> ProvisionalDiagnosis:
        """Diagnose the session-so-far (no gating, no tracking)."""
        stall_class, stall_conf = self._vote(
            self.framework.stall, state.stall_vector()
        )
        representation = self.framework.representation
        rep_class: Optional[str] = None
        rep_conf: Optional[float] = None
        if getattr(representation, "_model", None) is not None:
            rep_class, rep_conf = self._vote(
                representation, state.representation_vector()
            )
        ramp = min(1.0, state.n_chunks / self.age_full_chunks)
        agreement = stall_conf if rep_conf is None else min(stall_conf, rep_conf)
        return ProvisionalDiagnosis(
            session_id=session_id,
            subscriber_id=subscriber_id,
            n_chunks=state.n_chunks,
            stall_class=stall_class,
            stall_confidence=stall_conf,
            representation_class=rep_class,
            representation_confidence=rep_conf,
            confidence=ramp * agreement,
            exact=state.exact,
        )

    # -- streaming interface -------------------------------------------

    def observe(
        self,
        state: StreamingSessionState,
        session_id: str,
        subscriber_id: str,
    ) -> Optional[ProvisionalDiagnosis]:
        """Maybe predict on a just-updated open session.

        Gated on the chunk count reaching ``after_chunks``, the count
        having *grown* since the last prediction (signalling entries
        update sessions without adding chunks), and the
        ``predict_every`` cadence.  Returns the provisional diagnosis
        when one is emitted (confidence at or above the threshold),
        else None.
        """
        n = state.n_chunks
        if n < self.after_chunks:
            return None
        track = self._tracks.get(subscriber_id)
        if track is not None and track.session_id != session_id:
            # The tracker moved on to a new session for this subscriber
            # before we saw the previous session's final diagnosis:
            # retire the old track where note_final can still find it.
            self._tracks.pop(subscriber_id, None)
            self._finished[track.session_id] = track
            while len(self._finished) > 1024:
                self._finished.pop(next(iter(self._finished)))
            track = None
        if track is not None and n <= track.n_last:
            return None
        if (n - self.after_chunks) % self.predict_every != 0:
            return None
        diagnosis = self.predict_partial(state, session_id, subscriber_id)
        if track is None:
            track = _SessionTrack(session_id=session_id)
            self._tracks[subscriber_id] = track
            _TRACKED.set(len(self._tracks))
        track.n_last = n
        track.predictions += 1
        if track.stall_class is None:
            track.last_change_chunk = n
        elif track.stall_class != diagnosis.stall_class:
            track.stall_flips += 1
            track.last_change_chunk = n
            _FLIPS.labels(model="stall").inc()
        if (
            track.representation_class is not None
            and diagnosis.representation_class is not None
            and track.representation_class != diagnosis.representation_class
        ):
            track.representation_flips += 1
            track.last_change_chunk = n
            _FLIPS.labels(model="representation").inc()
        track.stall_class = diagnosis.stall_class
        track.representation_class = diagnosis.representation_class
        _PROVISIONAL.labels(model="stall").inc()
        if diagnosis.representation_class is not None:
            _PROVISIONAL.labels(model="representation").inc()
        if diagnosis.confidence < self.min_confidence:
            return None
        return diagnosis

    def note_final(self, record: SessionRecord, diagnosis) -> None:
        """Fold a closed session's final diagnosis into the report.

        ``diagnosis`` is the final
        :class:`~repro.core.framework.SessionDiagnosis`.  Sessions
        that never reached a provisional prediction are ignored.
        """
        subscriber = record.session_id.rsplit("/online-", 1)[0]
        track = self._tracks.get(subscriber)
        if track is not None and track.session_id == diagnosis.session_id:
            self._tracks.pop(subscriber)
            _TRACKED.set(len(self._tracks))
        else:
            # A late (micro-batched) final: the live track — if any —
            # already belongs to the next session and must keep
            # accumulating; look for the retired one instead.
            track = self._finished.pop(diagnosis.session_id, None)
            if track is None:
                return
        if record.n_chunks < track.n_last:
            # Same id but fewer chunks than we predicted on: a discarded
            # session collided with a later one's sequence number.
            return
        stall_agrees = track.stall_class == diagnosis.stall_class
        _FINAL_AGREEMENT.labels(
            model="stall", agree="yes" if stall_agrees else "no"
        ).inc()
        rep_comparison = (
            track.representation_class is not None
            and diagnosis.representation_class is not None
        )
        rep_agrees = rep_comparison and (
            track.representation_class == diagnosis.representation_class
        )
        if rep_comparison:
            _FINAL_AGREEMENT.labels(
                model="representation", agree="yes" if rep_agrees else "no"
            ).inc()
        _CHUNKS_TO_STABLE.observe(float(track.last_change_chunk))
        self._report = self._report.merge(
            ConvergenceReport(
                sessions=1,
                predictions=track.predictions,
                stall_agreements=int(stall_agrees),
                representation_comparisons=int(rep_comparison),
                representation_agreements=int(rep_agrees),
                stall_flips=track.stall_flips,
                representation_flips=track.representation_flips,
                chunks_to_stable=(track.last_change_chunk,),
            )
        )

    def report(self) -> ConvergenceReport:
        """Convergence over sessions closed so far."""
        return self._report
