"""Online (partial-session) feature state and early prediction.

The offline pipeline diagnoses sessions only after they close; this
package provides the streaming counterpart: O(1)-per-record running
statistics (:mod:`repro.online.running`), incremental §4.1/§4.2
feature snapshots (:mod:`repro.online.snapshot`), and provisional
early diagnoses with convergence accounting
(:mod:`repro.online.early`).
"""

from repro.online.early import (
    ConvergenceReport,
    EarlyPredictor,
    ProvisionalDiagnosis,
)
from repro.online.running import EXACT_CUTOVER, P2Quantile, RunningStats
from repro.online.snapshot import (
    StreamingSessionState,
    state_from_record_prefix,
)

__all__ = [
    "EXACT_CUTOVER",
    "P2Quantile",
    "RunningStats",
    "StreamingSessionState",
    "state_from_record_prefix",
    "ConvergenceReport",
    "EarlyPredictor",
    "ProvisionalDiagnosis",
]
