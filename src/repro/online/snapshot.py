"""Partial-session feature snapshots from streaming accumulators.

A closed session's feature vector is built by
:mod:`repro.core.features` from the full chunk arrays.  An *open*
session cannot afford that — rebuilding 70/210 statistics from scratch
on every weblog entry is O(n) per entry, O(n²) per session.
:class:`StreamingSessionState` is the incremental twin: one
:class:`~repro.online.running.RunningStats` per §4.1/§4.2 metric
series, snapshotting feature vectors **in the same canonical order**
as ``stall_feature_names()`` / ``representation_feature_names()``.

**Feed cost.**  :meth:`StreamingSessionState.add_entry` is a single
list append — accumulator work is deferred until a snapshot is
actually requested, so a tracker that maintains streaming state but is
never asked for a partial vector pays (close to) nothing per entry.
Pending chunks are *folded* into the accumulators at snapshot time,
with the derived-series recurrences vectorised over the pending block;
between snapshots the pending list mirrors (and references) the
entries the tracker's own per-session buffer already holds, so the
memory order is unchanged.  With early prediction on, snapshots arrive
every ``predict_every`` chunks and the pending block stays that small.

**Exactness boundary.**  While the session is at or below
``exact_cutover`` chunks, no fold has happened yet and a snapshot
rebuilds a real :class:`~repro.datasets.schema.SessionRecord` from the
pending chunks, calling the per-record feature oracle
(:func:`~repro.core.features.stall_features` /
:func:`~repro.core.features.representation_features`) — so exact-regime
partial vectors are *bit-identical* to the batch pipeline on the same
chunk prefix, including the record's sort-by-arrival normalisation.
Past the cutover, snapshots fold and assemble from the streaming
accumulators: min/max/mean stay exact, percentile positions become P²
estimates (see :mod:`repro.online.running`).

The derived-series recurrences mirror the batch definitions exactly:

* ``chunk time``   = ``arrival - t0`` (t0 = first chunk's arrival)
* ``chunk avg size`` = running mean of sizes
* ``chunk Δsize``  = ``|size - prev_size|``          (from chunk 2)
* ``chunk Δt``     = ``arrival - prev_arrival``      (from chunk 2)
* ``throughput``   = ``size * 8 / 1000 / max(transaction, 1e-3)``
* ``cumsum throughput`` = running sum of the above
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.capture.weblog import WeblogEntry
from repro.core.features import (
    REPRESENTATION_METRICS,
    STALL_METRICS,
    representation_feature_names,
    representation_features,
    stall_feature_names,
    stall_features,
)
from repro.datasets.schema import SessionRecord
from repro.online.running import EXACT_CUTOVER, RunningStats
from repro.timeseries.stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
)

__all__ = ["StreamingSessionState", "state_from_record_prefix"]

#: Union of both models' metric series, canonical (stall-first) order.
_SERIES: Tuple[str, ...] = tuple(
    dict.fromkeys((*STALL_METRICS, *REPRESENTATION_METRICS))
)

#: Every percentile point either stat set requests — one P² estimator
#: per point per series covers both snapshots.
_PERCENTILE_POINTS: Tuple[float, ...] = tuple(
    sorted(
        {
            float(stat[1:])
            for stat in (*SUMMARY_STATS_BASIC, *SUMMARY_STATS_EXTENDED)
            if stat.startswith("p")
        }
    )
)

_STALL_WIDTH = len(STALL_METRICS) * len(SUMMARY_STATS_BASIC)
_REPRESENTATION_WIDTH = len(REPRESENTATION_METRICS) * len(
    SUMMARY_STATS_EXTENDED
)

#: Buffered per-chunk fields, in SessionRecord constructor order.
_CHUNK_FIELDS = (
    "timestamps",
    "sizes",
    "transactions",
    "rtt_min",
    "rtt_avg",
    "rtt_max",
    "bdp",
    "bif_avg",
    "bif_max",
    "loss_pct",
    "retx_pct",
)

#: A pending chunk: either the raw field tuple (in ``_CHUNK_FIELDS``
#: Table-1 order) or the weblog entry itself.  Storing the entry keeps
#: :meth:`StreamingSessionState.add_entry` down to one list append —
#: extracting eleven attributes per entry on the tracker hot path was
#: measurable; doing it lazily at fold time is not.
_Pending = Union[Tuple[float, ...], WeblogEntry]


def _as_row(item: _Pending) -> Tuple[float, ...]:
    if type(item) is tuple:
        return item
    return (
        item.arrival_s,
        float(item.object_bytes),
        item.transaction_s,
        item.rtt_min_ms,
        item.rtt_avg_ms,
        item.rtt_max_ms,
        item.bdp_bytes,
        item.bif_avg_bytes,
        item.bif_max_bytes,
        item.loss_pct,
        item.retx_pct,
    )


class StreamingSessionState:
    """Incremental feature state of one open session.

    Feed media chunks with :meth:`add_entry` (weblog entries) or
    :meth:`add_chunk` (raw fields, e.g. replaying a record prefix);
    read partial feature vectors with :meth:`stall_vector` /
    :meth:`representation_vector`.

    Parameters
    ----------
    exact_cutover:
        Chunk count up to which snapshots are bit-identical to the
        batch pipeline (see module docstring).  ``0`` streams from the
        first chunk.
    """

    __slots__ = (
        "n_chunks",
        "exact_cutover",
        "_stats",
        "_pending",
        "_folded",
        "_t0",
        "_size_sum",
        "_throughput_sum",
        "_prev_size",
        "_prev_arrival",
    )

    def __init__(self, exact_cutover: int = EXACT_CUTOVER) -> None:
        if exact_cutover < 0:
            raise ValueError("exact_cutover must be >= 0")
        self.n_chunks = 0
        self.exact_cutover = exact_cutover
        #: Built lazily at the first fold: 15 series × 11 P² estimators
        #: is a measurable allocation per *session*, and sessions that
        #: close inside the exact regime never need any of it.
        self._stats: Optional[Dict[str, RunningStats]] = None
        #: Chunks seen but not yet folded into the accumulators.
        self._pending: List[_Pending] = []
        #: Chunks already folded (never unfolds; 0 while ``exact``).
        self._folded = 0
        self._t0 = 0.0
        self._size_sum = 0.0
        self._throughput_sum = 0.0
        self._prev_size = 0.0
        self._prev_arrival = 0.0

    # ------------------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True while snapshots replay the full chunk prefix."""
        return self.exact_cutover > 0 and self.n_chunks <= self.exact_cutover

    def add_entry(self, entry: WeblogEntry) -> None:
        """Feed one media weblog entry (chunk arrives at ``arrival_s``).

        One list append — this sits on the tracker's per-entry hot
        path (``benchmarks/test_bench_online.py`` gates the overhead).
        """
        self._pending.append(entry)
        self.n_chunks += 1

    def add_chunk(
        self,
        arrival_s: float,
        size_bytes: float,
        transaction_s: float,
        rtt_min_ms: float,
        rtt_avg_ms: float,
        rtt_max_ms: float,
        bdp_bytes: float,
        bif_avg_bytes: float,
        bif_max_bytes: float,
        loss_pct: float,
        retx_pct: float,
    ) -> None:
        """Feed one chunk's Table-1 fields."""
        self._pending.append(
            (
                arrival_s,
                size_bytes,
                transaction_s,
                rtt_min_ms,
                rtt_avg_ms,
                rtt_max_ms,
                bdp_bytes,
                bif_avg_bytes,
                bif_max_bytes,
                loss_pct,
                retx_pct,
            )
        )
        self.n_chunks += 1

    # ------------------------------------------------------------------

    def _fold(self) -> None:
        """Fold the pending chunks into the per-series accumulators.

        The derived-series recurrences are vectorised over the block;
        running state (t0, size sum, throughput sum, previous chunk)
        carries across folds, so folding chunk-by-chunk and folding in
        one block feed the accumulators the identical value sequence.
        """
        if not self._pending:
            return
        if self._stats is None:
            self._stats = {
                name: RunningStats(
                    percentiles=_PERCENTILE_POINTS, exact_cutover=0
                )
                for name in _SERIES
            }
        block = np.array(
            [_as_row(item) for item in self._pending], dtype=float
        )
        self._pending.clear()
        (
            arrival,
            size,
            transaction,
            rtt_min,
            rtt_avg,
            rtt_max,
            bdp,
            bif_avg,
            bif_max,
            loss,
            retx,
        ) = block.T
        m = block.shape[0]
        if self._folded == 0:
            self._t0 = arrival[0]
            dsize = np.abs(np.diff(size))
            dt = np.diff(arrival)
        else:
            dsize = np.abs(
                size - np.concatenate(([self._prev_size], size[:-1]))
            )
            dt = arrival - np.concatenate(([self._prev_arrival], arrival[:-1]))
        size_cum = self._size_sum + np.cumsum(size)
        avg_size = size_cum / (self._folded + np.arange(1, m + 1))
        throughput = size * 8.0 / 1000.0 / np.maximum(transaction, 1e-3)
        throughput_cum = self._throughput_sum + np.cumsum(throughput)

        stats = self._stats
        stats["RTT minimum"].update_many(rtt_min)
        stats["RTT average"].update_many(rtt_avg)
        stats["RTT maximum"].update_many(rtt_max)
        stats["BDP"].update_many(bdp)
        stats["BIF avg"].update_many(bif_avg)
        stats["BIF maximum"].update_many(bif_max)
        stats["packet loss"].update_many(loss)
        stats["packet retransmissions"].update_many(retx)
        stats["chunk size"].update_many(size)
        stats["chunk time"].update_many(arrival - self._t0)
        stats["chunk avg size"].update_many(avg_size)
        if dsize.size:
            stats["chunk Δsize"].update_many(dsize)
            stats["chunk Δt"].update_many(dt)
        stats["throughput"].update_many(throughput)
        stats["cumsum throughput"].update_many(throughput_cum)

        self._folded += m
        self._size_sum = float(size_cum[-1])
        self._throughput_sum = float(throughput_cum[-1])
        self._prev_size = float(size[-1])
        self._prev_arrival = float(arrival[-1])

    def partial_record(
        self, session_id: str = "partial"
    ) -> Optional[SessionRecord]:
        """The chunk prefix as a real record (exact regime only)."""
        if not self.exact or not self._pending:
            return None
        columns = list(
            zip(*(_as_row(item) for item in self._pending))
        )
        return SessionRecord(
            session_id=session_id,
            encrypted=True,
            **{
                field: np.array(column, dtype=float)
                for field, column in zip(_CHUNK_FIELDS, columns)
            },
        )

    def _streamed_vector(self, metrics, stats) -> np.ndarray:
        self._fold()
        out = np.empty(len(metrics) * len(stats), dtype=float)
        i = 0
        for metric in metrics:
            snapshot = self._stats[metric].snapshot(stats)
            for stat in stats:
                out[i] = snapshot[stat]
                i += 1
        return out

    def stall_vector(self) -> np.ndarray:
        """The 70-feature §4.1 vector of the session so far.

        Ordered exactly as
        :func:`~repro.core.features.stall_feature_names`; bit-identical
        to the batch pipeline on the same prefix while :attr:`exact`.
        """
        if self.n_chunks == 0:
            return np.zeros(_STALL_WIDTH, dtype=float)
        record = self.partial_record()
        if record is not None:
            features = stall_features(record)
            return np.array(
                [features[name] for name in stall_feature_names()],
                dtype=float,
            )
        return self._streamed_vector(STALL_METRICS, SUMMARY_STATS_BASIC)

    def representation_vector(self) -> np.ndarray:
        """The 210-feature §4.2 vector of the session so far.

        Ordered exactly as :func:`~repro.core.features.
        representation_feature_names`; bit-identical to the batch
        pipeline on the same prefix while :attr:`exact`.
        """
        if self.n_chunks == 0:
            return np.zeros(_REPRESENTATION_WIDTH, dtype=float)
        record = self.partial_record()
        if record is not None:
            features = representation_features(record)
            return np.array(
                [features[name] for name in representation_feature_names()],
                dtype=float,
            )
        return self._streamed_vector(
            REPRESENTATION_METRICS, SUMMARY_STATS_EXTENDED
        )


def state_from_record_prefix(
    record: SessionRecord,
    n_chunks: int,
    exact_cutover: int = EXACT_CUTOVER,
) -> StreamingSessionState:
    """Replay the first ``n_chunks`` chunks of a record into fresh state.

    The offline counterpart of the tracker's live feed — used by the
    early-vs-final experiment to ask "what would the early predictor
    have said after k chunks of this (eventually closed) session?".
    """
    state = StreamingSessionState(exact_cutover=exact_cutover)
    stop = min(n_chunks, record.n_chunks)
    for i in range(stop):
        state.add_chunk(
            arrival_s=float(record.timestamps[i]),
            size_bytes=float(record.sizes[i]),
            transaction_s=float(record.transactions[i]),
            rtt_min_ms=float(record.rtt_min[i]),
            rtt_avg_ms=float(record.rtt_avg[i]),
            rtt_max_ms=float(record.rtt_max[i]),
            bdp_bytes=float(record.bdp[i]),
            bif_avg_bytes=float(record.bif_avg[i]),
            bif_max_bytes=float(record.bif_max[i]),
            loss_pct=float(record.loss_pct[i]),
            retx_pct=float(record.retx_pct[i]),
        )
    return state
