"""O(1)-per-record streaming summary-statistic accumulators.

The batch path (:func:`repro.timeseries.stats.summary_statistics`)
recomputes every statistic from the full value array — fine for closed
sessions, hopeless for per-entry updates on open ones.  This module is
its streaming twin:

* count, min, max are maintained exactly;
* mean and standard deviation use Welford's online algorithm (exact in
  real arithmetic; floating-point rounding differs from the batch path
  by at most a few ulps);
* percentiles use one P² estimator (Jain & Chlamtac, 1985) per
  requested percentile point: five markers whose heights are nudged by
  a parabolic (falling back to linear) adjustment per observation.

**Exactness boundary.**  A :class:`RunningStats` additionally buffers
the first ``exact_cutover`` finite values.  While the buffer is alive
(``exact`` is True), :meth:`snapshot` delegates to the batch
``summary_statistics`` on that buffer — so early snapshots are
*bit-identical* to the batch oracle on the same prefix.  Past the
cutover the buffer is dropped (bounded memory) and snapshots switch to
the streaming estimates: count/min/max stay exact, mean/std are
Welford, and each percentile is its P² estimate, which is guaranteed
to lie within the observed ``[min, max]`` range (markers 0 and 4 pin
the true extremes and the marker heights stay monotone).  On smooth
distributions the P² error is typically well under 2% of the observed
spread; adversarial streams (e.g. heavy point masses) are only bounded
by the spread itself — the property suite in
``tests/online/test_running.py`` asserts exactly these two guarantees.

Non-finite inputs (NaN/inf) are dropped on update, mirroring the batch
path's ``isfinite`` filter; an accumulator that has seen no finite
value snapshots every statistic to 0.0, mirroring the batch empty-case.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import math

import numpy as np

from repro.timeseries.stats import summary_statistics

__all__ = ["EXACT_CUTOVER", "P2Quantile", "RunningStats"]

#: Default exact-buffer size: snapshots of the first 64 values are
#: bit-identical to the batch path.  Most video sessions close below
#: this, so in practice the streaming estimates only engage on long
#: sessions where per-chunk rescans would hurt most.
EXACT_CUTOVER = 64


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac, 1985).

    Maintains five markers: the observed minimum and maximum, the
    current quantile estimate, and the two mid-quantiles between them.
    Each observation costs O(1); no values are retained.

    Parameters
    ----------
    q:
        Quantile in (0, 1), e.g. ``0.5`` for the median.
    """

    __slots__ = ("q", "count", "_init", "_heights", "_positions", "_d")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self.count = 0
        self._init: Optional[List[float]] = []
        self._heights: List[float] = []
        #: 1-based marker positions (how many observations <= marker).
        self._positions: List[float] = []
        #: Desired-position increments per observation.
        self._d: Tuple[float, ...] = (
            0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0
        )

    def update(self, value: float) -> None:
        """Feed one (finite) observation."""
        self.count += 1
        if self._init is not None:
            self._init.append(value)
            if len(self._init) == 5:
                self._heights = sorted(self._init)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._init = None
            return

        q_, n = self._heights, self._positions
        # Locate the cell, updating the extreme markers exactly.
        if value < q_[0]:
            q_[0] = value
            k = 0
        elif value >= q_[4]:
            q_[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q_[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0

        # Nudge the three interior markers towards their desired
        # positions 1 + (count - 1) * d_i.
        for i in (1, 2, 3):
            desired = 1.0 + (self.count - 1) * self._d[i]
            diff = desired - n[i]
            if (diff >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                diff <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if diff > 0 else -1.0
                candidate = self._parabolic(i, step)
                if q_[i - 1] < candidate < q_[i + 1]:
                    q_[i] = candidate
                else:
                    q_[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q_, n = self._heights, self._positions
        return q_[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (q_[i + 1] - q_[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (q_[i] - q_[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q_, n = self._heights, self._positions
        j = i + int(step)
        return q_[i] + step * (q_[j] - q_[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (exact while count < 5)."""
        if self.count == 0:
            return 0.0
        if self._init is not None:
            return float(np.percentile(self._init, self.q * 100.0))
        return self._heights[2]


class RunningStats:
    """Streaming counterpart of one per-metric summary-statistic row.

    Parameters
    ----------
    percentiles:
        Percentile points (0-100) to maintain P² estimators for; a
        snapshot may only request ``"pX"`` statistics declared here.
    exact_cutover:
        Buffer the first this-many finite values and serve snapshots
        from the batch oracle while the buffer lives (bit-identical to
        ``summary_statistics`` on the same prefix).  ``0`` disables
        buffering entirely — streaming estimates from the first value.
    """

    __slots__ = (
        "count",
        "dropped",
        "exact_cutover",
        "_min",
        "_max",
        "_mean",
        "_m2",
        "_quantiles",
        "_buffer",
    )

    def __init__(
        self,
        percentiles: Sequence[float] = (),
        exact_cutover: int = EXACT_CUTOVER,
    ) -> None:
        if exact_cutover < 0:
            raise ValueError("exact_cutover must be >= 0")
        self.count = 0
        #: Non-finite inputs dropped (the batch path filters them too).
        self.dropped = 0
        self.exact_cutover = exact_cutover
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0
        self._quantiles: Dict[float, P2Quantile] = {
            float(p): P2Quantile(float(p) / 100.0) for p in percentiles
        }
        self._buffer: Optional[List[float]] = (
            [] if exact_cutover > 0 else None
        )

    @property
    def exact(self) -> bool:
        """True while snapshots are served from the exact buffer."""
        return self._buffer is not None

    def update(self, value: float) -> None:
        """Feed one value; NaN/inf are counted in ``dropped`` and skipped."""
        value = float(value)
        if not math.isfinite(value):
            self.dropped += 1
            return
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        for estimator in self._quantiles.values():
            estimator.update(value)
        if self._buffer is not None:
            if self.count <= self.exact_cutover:
                self._buffer.append(value)
            else:
                # Past the cutover: free the buffer, never come back.
                self._buffer = None

    def update_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (matches ``np.std``'s ddof=0)."""
        return math.sqrt(self._m2 / self.count) if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, percentile: float) -> float:
        """Streaming estimate of one declared percentile point (0-100)."""
        try:
            estimator = self._quantiles[float(percentile)]
        except KeyError:
            raise KeyError(
                f"percentile {percentile!r} has no estimator; declared: "
                f"{sorted(self._quantiles)}"
            ) from None
        return estimator.value()

    def snapshot(self, stats: Sequence[str]) -> Dict[str, float]:
        """Current summary statistics, in the order of ``stats``.

        Exact regime: the batch oracle on the buffered prefix —
        bit-identical to ``summary_statistics`` on the same values.
        Streaming regime: exact count/min/max, Welford mean/std, P²
        percentiles.  No finite values yet: every statistic is 0.0
        (the batch empty-case).
        """
        if self._buffer is not None:
            return summary_statistics(self._buffer, stats=stats)
        if self.count == 0:
            return {stat: 0.0 for stat in stats}
        out: Dict[str, float] = {}
        for stat in stats:
            if stat == "min":
                out[stat] = self._min
            elif stat == "max":
                out[stat] = self._max
            elif stat == "mean":
                out[stat] = self._mean
            elif stat == "std":
                out[stat] = self.std
            elif stat.startswith("p"):
                out[stat] = self.quantile(float(stat[1:]))
            else:
                raise ValueError(f"unknown statistic: {stat!r}")
        return out
