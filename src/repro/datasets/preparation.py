"""Data preparation (§3.3): cleaning, grouping and GT joining.

Cleartext path: drop proxy-cached/compressed logs, parse every URI,
group segment logs by the session id (``cpn``), attach the stall ground
truth from the last playback report of each session.

Encrypted path: take the output of the session reconstruction and join
it with the instrumented device's records "by matching the respective
timestamps and the chunk count per session" (§5.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.capture.device import PlaybackSummary, SegmentRecord
from repro.capture.reconstruction import ReconstructedSession
from repro.capture.uri import ParsedSegment, ParsedStatsReport, parse_uri
from repro.capture.weblog import WeblogEntry
from repro.streaming.session import VideoSession

from .schema import SessionRecord

__all__ = [
    "remove_proxy_artifacts",
    "group_cleartext_sessions",
    "record_from_video_session",
    "records_from_reconstruction",
]


def remove_proxy_artifacts(entries: Iterable[WeblogEntry]) -> List[WeblogEntry]:
    """Drop logs served from the proxy cache or recompressed by it.

    §3.3: "we ensure that any logs that correspond to cached and/or
    compressed content by the proxy are removed from the dataset" —
    their sizes and timings describe the proxy, not the radio path.
    """
    return [e for e in entries if not (e.cached or e.compressed)]


def _arrays_from_entries(entries: Sequence[WeblogEntry]) -> Dict[str, np.ndarray]:
    return {
        "timestamps": np.array([e.arrival_s for e in entries]),
        "sizes": np.array([float(e.object_bytes) for e in entries]),
        "transactions": np.array([e.transaction_s for e in entries]),
        "rtt_min": np.array([e.rtt_min_ms for e in entries]),
        "rtt_avg": np.array([e.rtt_avg_ms for e in entries]),
        "rtt_max": np.array([e.rtt_max_ms for e in entries]),
        "bdp": np.array([e.bdp_bytes for e in entries]),
        "bif_avg": np.array([e.bif_avg_bytes for e in entries]),
        "bif_max": np.array([e.bif_max_bytes for e in entries]),
        "loss_pct": np.array([e.loss_pct for e in entries]),
        "retx_pct": np.array([e.retx_pct for e in entries]),
    }


def group_cleartext_sessions(
    entries: Iterable[WeblogEntry],
    min_chunks: int = 3,
) -> List[SessionRecord]:
    """Group cleartext weblogs into per-session records via the URI cpn.

    Sessions with fewer than ``min_chunks`` media chunks are dropped
    (aborted page loads carry no usable signal).
    """
    cleaned = remove_proxy_artifacts(entries)
    segments: Dict[str, List[Tuple[WeblogEntry, ParsedSegment]]] = defaultdict(list)
    reports: Dict[str, List[ParsedStatsReport]] = defaultdict(list)

    for entry in cleaned:
        if entry.uri is None:
            continue
        parsed = parse_uri(entry.uri)
        if isinstance(parsed, ParsedSegment):
            segments[parsed.session_id].append((entry, parsed))
        elif isinstance(parsed, ParsedStatsReport):
            reports[parsed.session_id].append(parsed)

    records: List[SessionRecord] = []
    for session_id, pairs in segments.items():
        if len(pairs) < min_chunks:
            continue
        pairs.sort(key=lambda p: p[0].arrival_s)
        media_entries = [p[0] for p in pairs]
        arrays = _arrays_from_entries(media_entries)

        video_pairs = [p for p in pairs if p[1].kind == "video"]
        resolutions = np.array([p[1].resolution_p for p in video_pairs])
        media_s = np.array([p[1].media_seconds for p in video_pairs])

        session_reports = sorted(
            reports.get(session_id, []), key=lambda r: r.playback_position_s
        )
        if session_reports:
            last = session_reports[-1]
            stall_count = last.stall_count
            stall_duration = last.stall_duration_s
            total_duration = last.playback_position_s
        else:
            stall_count = None
            stall_duration = None
            total_duration = None

        adaptive = bool(np.unique(resolutions).size > 1) or any(
            p[1].kind == "audio" for p in pairs
        )
        records.append(
            SessionRecord(
                session_id=session_id,
                encrypted=False,
                stall_count=stall_count,
                stall_duration_s=stall_duration,
                total_duration_s=total_duration,
                resolutions=resolutions if resolutions.size else None,
                resolution_media_s=media_s if media_s.size else None,
                kind="adaptive" if adaptive else "progressive",
                **arrays,
            )
        )
    return records


def record_from_video_session(
    session: VideoSession,
    encrypted: bool = False,
    with_ground_truth: bool = True,
) -> SessionRecord:
    """Build a record straight from a simulated session (shortcut path).

    Used by unit tests and controlled experiments where the weblog
    round trip is not the subject under test.
    """
    chunks = session.chunks
    arrays = {
        "timestamps": np.array([c.arrival_s for c in chunks]),
        "sizes": np.array([float(c.size_bytes) for c in chunks]),
        "transactions": np.array([c.transfer.duration_s for c in chunks]),
        "rtt_min": np.array([c.transfer.rtt_min_ms for c in chunks]),
        "rtt_avg": np.array([c.transfer.rtt_avg_ms for c in chunks]),
        "rtt_max": np.array([c.transfer.rtt_max_ms for c in chunks]),
        "bdp": np.array([c.transfer.bdp_bytes for c in chunks]),
        "bif_avg": np.array([c.transfer.bif_avg_bytes for c in chunks]),
        "bif_max": np.array([c.transfer.bif_max_bytes for c in chunks]),
        "loss_pct": np.array([c.transfer.loss_pct for c in chunks]),
        "retx_pct": np.array([c.transfer.retx_pct for c in chunks]),
    }
    video_chunks = session.video_chunks
    gt = {}
    if with_ground_truth:
        gt = {
            "stall_count": session.stall_count,
            "stall_duration_s": session.stall_duration_s,
            "total_duration_s": session.total_duration_s,
            "resolutions": np.array([c.resolution_p for c in video_chunks]),
            "resolution_media_s": np.array(
                [c.media_seconds for c in video_chunks]
            ),
            "kind": session.kind,
            "abandoned": session.abandoned,
            "place": session.place,
        }
    return SessionRecord(
        session_id=session.session_id,
        encrypted=encrypted,
        **arrays,
        **gt,
    )


def records_from_reconstruction(
    reconstructed: Sequence[ReconstructedSession],
    summaries: Sequence[PlaybackSummary],
    segment_records: Sequence[SegmentRecord],
    time_tolerance_s: float = 5.0,
) -> List[SessionRecord]:
    """Join reconstructed encrypted sessions with device ground truth.

    §5.2: "the two datasets can be easily joined by matching the
    respective timestamps and the chunk count per session".  Each
    reconstructed session is matched to the device session whose first
    hooked request is closest in time (within tolerance); unmatched
    reconstructions are returned without ground truth.
    """
    device_first_ts: Dict[str, float] = {}
    device_resolutions: Dict[str, List[Tuple[float, int]]] = defaultdict(list)
    for seg in segment_records:
        if (
            seg.session_id not in device_first_ts
            or seg.timestamp_s < device_first_ts[seg.session_id]
        ):
            device_first_ts[seg.session_id] = seg.timestamp_s
        if seg.kind == "video":
            device_resolutions[seg.session_id].append(
                (seg.timestamp_s, seg.resolution_p)
            )
    summary_by_id = {s.session_id: s for s in summaries}

    records: List[SessionRecord] = []
    used: set = set()
    for rs in reconstructed:
        arrays = _arrays_from_entries(sorted(rs.media, key=lambda e: e.arrival_s))
        first_media_ts = min(e.timestamp_s for e in rs.media)

        best_id: Optional[str] = None
        best_delta = time_tolerance_s
        for session_id, ts in device_first_ts.items():
            if session_id in used:
                continue
            delta = abs(ts - first_media_ts)
            if delta <= best_delta:
                best_delta = delta
                best_id = session_id

        gt: Dict = {}
        if best_id is not None:
            used.add(best_id)
            summary = summary_by_id.get(best_id)
            resolutions = sorted(device_resolutions.get(best_id, []))
            if summary is not None:
                gt.update(
                    stall_count=summary.stall_count,
                    stall_duration_s=summary.stall_duration_s,
                    total_duration_s=summary.total_duration_s,
                    abandoned=summary.abandoned,
                )
            if resolutions:
                gt["resolutions"] = np.array([r for _, r in resolutions])
        records.append(
            SessionRecord(
                session_id=best_id or f"unmatched-{len(records)}",
                encrypted=True,
                **arrays,
                **gt,
            )
        )
    return records
