"""Per-session dataset schema.

After data preparation (§3.3) "each entry in the dataset corresponds to
a unique video session which includes information about the total
number of stalls and their duration, as well as the characteristics of
each chunk such as the quality representation, size, download
time-stamp, but also the transport layer statistics like RTT, loss,
re-transmissions, BDP and bytes-in-flight for each chunk download."

:class:`SessionRecord` is that entry.  The chunk-level arrays cover all
*media* chunks (video and audio — encrypted traffic cannot tell them
apart, so the feature pipeline never relies on the distinction), while
the ground-truth fields are only populated where a ground-truth channel
existed (URIs for cleartext, the instrumented device for encrypted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SessionRecord"]


@dataclass
class SessionRecord:
    """One prepared dataset row (a unique video session).

    Chunk-level arrays are aligned with each other and sorted by
    arrival time.  Ground-truth fields are ``None`` when unavailable
    (e.g. resolution for encrypted sessions without device logs).
    """

    session_id: str
    encrypted: bool

    # --- per-chunk network features (Table 1, left column)
    timestamps: np.ndarray          # chunk arrival times (chunk time)
    sizes: np.ndarray               # chunk sizes in bytes
    transactions: np.ndarray        # transfer durations (s) per chunk
    rtt_min: np.ndarray             # per-chunk minimum RTT (ms)
    rtt_avg: np.ndarray
    rtt_max: np.ndarray
    bdp: np.ndarray                 # bandwidth-delay product (bytes)
    bif_avg: np.ndarray             # average bytes-in-flight
    bif_max: np.ndarray
    loss_pct: np.ndarray
    retx_pct: np.ndarray

    # --- ground truth (Table 1, right column + playback reports)
    stall_count: Optional[int] = None
    stall_duration_s: Optional[float] = None
    total_duration_s: Optional[float] = None
    resolutions: Optional[np.ndarray] = None    # per *video* chunk
    resolution_media_s: Optional[np.ndarray] = None  # media secs per video chunk
    kind: Optional[str] = None                  # adaptive / progressive
    abandoned: Optional[bool] = None
    place: Optional[str] = None                 # diagnostics only

    def __post_init__(self) -> None:
        arrays = (
            self.timestamps,
            self.sizes,
            self.transactions,
            self.rtt_min,
            self.rtt_avg,
            self.rtt_max,
            self.bdp,
            self.bif_avg,
            self.bif_max,
            self.loss_pct,
            self.retx_pct,
        )
        n = self.timestamps.size
        if any(a.size != n for a in arrays):
            raise ValueError("chunk-level arrays must be aligned")
        if n == 0:
            raise ValueError("a session record needs at least one chunk")
        order = np.argsort(self.timestamps, kind="mergesort")
        if not np.array_equal(order, np.arange(n)):
            for name in (
                "timestamps",
                "sizes",
                "transactions",
                "rtt_min",
                "rtt_avg",
                "rtt_max",
                "bdp",
                "bif_avg",
                "bif_max",
                "loss_pct",
                "retx_pct",
            ):
                setattr(self, name, getattr(self, name)[order])

    @property
    def n_chunks(self) -> int:
        return int(self.timestamps.size)

    # ------------------------------------------------------------------
    # Ground-truth-derived label inputs
    # ------------------------------------------------------------------

    def rebuffering_ratio(self) -> float:
        """RR (eq. 1); requires stall + duration ground truth."""
        if self.stall_duration_s is None or self.total_duration_s is None:
            raise ValueError("RR needs stall and duration ground truth")
        if self.total_duration_s <= 0:
            raise ValueError("total duration must be positive")
        return self.stall_duration_s / self.total_duration_s

    def mean_resolution(self) -> float:
        """Media-time-weighted mean resolution of the session."""
        if self.resolutions is None or self.resolutions.size == 0:
            raise ValueError("no resolution ground truth")
        if (
            self.resolution_media_s is not None
            and self.resolution_media_s.size == self.resolutions.size
            and self.resolution_media_s.sum() > 0
        ):
            weights = self.resolution_media_s
            return float(
                (weights * self.resolutions).sum() / weights.sum()
            )
        return float(np.mean(self.resolutions))

    def switch_count(self) -> int:
        """Number of representation changes between consecutive chunks."""
        if self.resolutions is None:
            raise ValueError("no resolution ground truth")
        r = self.resolutions
        return int(np.count_nonzero(np.diff(r)))

    def switch_amplitude(self) -> float:
        """Normalised mean switch amplitude A (eq. 2)."""
        if self.resolutions is None:
            raise ValueError("no resolution ground truth")
        r = self.resolutions.astype(float)
        if r.size < 2:
            return 0.0
        return float(np.abs(np.diff(r)).sum() / (r.size - 1))

    def has_switches(self) -> bool:
        return self.switch_count() > 0
