"""Corpus generation, data preparation and the per-session schema."""

from .generate import (
    Corpus,
    CorpusConfig,
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_corpus,
    generate_encrypted_corpus,
)
from .io import read_records, read_weblogs, write_records, write_weblogs
from .preparation import (
    group_cleartext_sessions,
    record_from_video_session,
    records_from_reconstruction,
    remove_proxy_artifacts,
)
from .schema import SessionRecord

__all__ = [
    "SessionRecord",
    "Corpus",
    "CorpusConfig",
    "generate_corpus",
    "generate_cleartext_corpus",
    "generate_adaptive_corpus",
    "generate_encrypted_corpus",
    "group_cleartext_sessions",
    "record_from_video_session",
    "records_from_reconstruction",
    "remove_proxy_artifacts",
    "write_weblogs",
    "read_weblogs",
    "write_records",
    "read_records",
]
