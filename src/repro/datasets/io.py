"""Dataset import/export: weblogs and session records as JSON Lines.

A reproduction corpus is only useful if it can leave the process:
operators exchange weblog extracts, researchers archive prepared
datasets.  This module serialises both layers to JSONL —
one record per line, append-friendly, greppable:

* weblog streams (:class:`~repro.capture.weblog.WeblogEntry`), the raw
  capture layer;
* prepared session records
  (:class:`~repro.datasets.schema.SessionRecord`), the model input.

Round trips are exact for every field the pipeline reads.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.capture.weblog import WeblogEntry

from .schema import SessionRecord

__all__ = [
    "write_weblogs",
    "read_weblogs",
    "write_records",
    "read_records",
]

_PathLike = Union[str, Path]

_RECORD_ARRAYS = (
    "timestamps",
    "sizes",
    "transactions",
    "rtt_min",
    "rtt_avg",
    "rtt_max",
    "bdp",
    "bif_avg",
    "bif_max",
    "loss_pct",
    "retx_pct",
)

_RECORD_OPTIONAL_ARRAYS = ("resolutions", "resolution_media_s")

_RECORD_SCALARS = (
    "session_id",
    "encrypted",
    "stall_count",
    "stall_duration_s",
    "total_duration_s",
    "kind",
    "abandoned",
    "place",
)


def write_weblogs(entries: Iterable[WeblogEntry], path: _PathLike) -> int:
    """Write weblog entries as JSONL; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for entry in entries:
            handle.write(json.dumps(asdict(entry)) + "\n")
            count += 1
    return count


def read_weblogs(path: _PathLike) -> List[WeblogEntry]:
    """Read a weblog JSONL file written by :func:`write_weblogs`."""
    entries: List[WeblogEntry] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                entries.append(WeblogEntry(**payload))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid weblog line ({exc})"
                ) from exc
    return entries


def _record_to_payload(record: SessionRecord) -> dict:
    payload = {name: getattr(record, name) for name in _RECORD_SCALARS}
    for name in _RECORD_ARRAYS:
        payload[name] = getattr(record, name).tolist()
    for name in _RECORD_OPTIONAL_ARRAYS:
        value = getattr(record, name)
        payload[name] = value.tolist() if value is not None else None
    return payload


def _record_from_payload(payload: dict) -> SessionRecord:
    kwargs = {name: payload.get(name) for name in _RECORD_SCALARS}
    for name in _RECORD_ARRAYS:
        kwargs[name] = np.asarray(payload[name], dtype=float)
    for name in _RECORD_OPTIONAL_ARRAYS:
        value = payload.get(name)
        kwargs[name] = np.asarray(value, dtype=float) if value is not None else None
    return SessionRecord(**kwargs)


def write_records(records: Iterable[SessionRecord], path: _PathLike) -> int:
    """Write session records as JSONL; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_payload(record)) + "\n")
            count += 1
    return count


def read_records(path: _PathLike) -> List[SessionRecord]:
    """Read a record JSONL file written by :func:`write_records`."""
    records: List[SessionRecord] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(_record_from_payload(json.loads(line)))
            except (json.JSONDecodeError, TypeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid record line ({exc})"
                ) from exc
    return records
