"""Per-session RNG stream layout shared by both corpus engines.

The corpus root seed spawns one *plan* stream (everything decided
before sessions run: mobility walk, catalog draws, outage placement,
gaps, noise) plus one child per session, which in turn spawns six
independent streams:

======  =====================================================
stream  consumed by
======  =====================================================
path    :class:`~repro.network.path.NetworkPath` construction
player  player decisions (quality roll / bandwidth hint,
        patience, per-chunk size noise)
ident   the 16-character session id
tcp     video-connection transport randomness
tcp     audio-connection transport randomness (adaptive only)
proxy   capture-side randomness (object sizes, cache marks)
======  =====================================================

Splitting by *consumer* rather than sharing one stream is what makes
the vectorized engine possible: each stream's consumption pattern is
simple enough to bulk-draw (or replay lane-by-lane) without simulating
the other consumers, and over-drawing one stream never perturbs
another.  ``SeedSequence.spawn`` guarantees the same streams for the
same seed regardless of engine or evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["SessionStreams", "corpus_streams"]


@dataclass
class SessionStreams:
    """The six independent generators of one session."""

    path: np.random.Generator
    player: np.random.Generator
    ident: np.random.Generator
    tcp_video: np.random.Generator
    tcp_audio: np.random.Generator
    proxy: np.random.Generator


def corpus_streams(
    seed: int, n_sessions: int
) -> Tuple[np.random.Generator, List[SessionStreams]]:
    """(plan generator, per-session streams) for a corpus seed."""
    root = np.random.SeedSequence(seed)
    children = root.spawn(n_sessions + 1)
    plan_rng = np.random.default_rng(children[0])
    streams = [
        SessionStreams(*(np.random.default_rng(s) for s in child.spawn(6)))
        for child in children[1:]
    ]
    return plan_rng, streams
