"""Corpus plan: all pre-session decisions, drawn in one batched pass.

The plan stream decides everything that can be known before any session
is simulated — where the user is, which videos play, which paths get
coverage dips, which sessions are adaptive and at what quality cap, the
inter-session gaps and the background-noise traffic.  Both corpus
engines consume the same :class:`CorpusPlan`, so these decisions are
bit-identical by construction; only the per-session simulation differs
between engines.

Draw order (fixed; changing it changes every same-seed corpus):

1. mobility walk uniforms,
2. catalog batch (durations, complexities, video ids),
3. outage rolls, outage counts, then per-outage start/duration/factor,
4. adaptive rolls,
5. quality-cap uniforms (drawn for every session, used by adaptive ones),
6. inter-session gaps,
7. Poisson noise counts, then per-entry host/size/offset/transaction.

Diurnal scaling uses the *scheduled* epochs (nominal video duration +
gap), which are known at plan time; realized epochs (actual session
wall durations) are computed after simulation and only shift weblog
timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.capture.proxy import server_ip_for
from repro.capture.weblog import WeblogEntry
from repro.network.conditions import ConditionProfile
from repro.network.mobility import Place
from repro.network.path import Outage

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.datasets.generate import CorpusConfig

__all__ = ["NOISE_HOSTS", "CorpusPlan", "build_plan", "build_noise_entries"]

#: Background (non-video) traffic hosts seen between sessions.
NOISE_HOSTS = (
    "www.facebook.com",
    "cdn.twitter.com",
    "www.google.com",
    "static.news-site.example",
    "api.weatherapp.example",
)


@dataclass
class CorpusPlan:
    """Columns of pre-session decisions, one row per session."""

    videos: list                      # List[Video]
    places: List[Place]
    profiles: List[ConditionProfile]  # diurnal-scaled where configured
    outages: List[List[Outage]]
    adaptive: np.ndarray              # bool
    caps: List[int]
    gaps: np.ndarray                  # float seconds
    scheduled_epochs: np.ndarray      # float seconds
    subscribers: List[str]
    noise_counts: np.ndarray          # int, per session
    noise_host_idx: np.ndarray        # int, flat over all noise entries
    noise_sizes: np.ndarray           # int
    noise_ts_u: np.ndarray            # uniform in [0, 1)
    noise_transactions: np.ndarray    # float seconds

    @property
    def n_sessions(self) -> int:
        return len(self.videos)


def build_plan(
    config: "CorpusConfig",
    rng: np.random.Generator,
    catalog,
) -> CorpusPlan:
    """Draw the full corpus plan from the plan stream."""
    n = config.n_sessions
    places = config.mobility.walk(n, rng)
    videos = catalog.sample_batch(n, rng)
    durations = np.array([v.duration_s for v in videos], dtype=float)

    # --- Transient coverage dips, concentrated on mobile regimes.
    static = np.array([p.static for p in places], dtype=bool)
    outage_prob = config.transient_outage_prob * np.where(static, 0.4, 1.6)
    outage_rolls = rng.random(n)
    lo, hi = config.transient_outage_count
    outage_counts_raw = rng.integers(lo, hi + 1, size=n)
    has_outage = outage_rolls < outage_prob
    outage_counts = np.where(has_outage, outage_counts_raw, 0)
    per_outage_dur = np.repeat(durations, outage_counts)
    starts = rng.uniform(5.0, np.maximum(10.0, per_outage_dur))
    out_durs = rng.uniform(
        *config.transient_outage_duration_s, size=per_outage_dur.size
    )
    factors = rng.uniform(
        *config.transient_outage_factor, size=per_outage_dur.size
    )
    outages: List[List[Outage]] = []
    cursor = 0
    for count in outage_counts.tolist():
        outages.append(
            [
                Outage(
                    float(starts[j]),
                    float(starts[j]) + float(out_durs[j]),
                    float(factors[j]),
                )
                for j in range(cursor, cursor + count)
            ]
        )
        cursor += count

    # --- Player kind and quality cap.
    adaptive = rng.random(n) < config.adaptive_fraction
    cap_values = list(config.quality_caps.keys())
    cap_probs = np.array(list(config.quality_caps.values()), dtype=float)
    cap_probs = cap_probs / cap_probs.sum()
    cap_cum = np.cumsum(cap_probs)
    cap_u = rng.random(n)
    cap_idx = np.minimum(
        np.searchsorted(cap_cum, cap_u, side="right"), len(cap_values) - 1
    )
    caps = [cap_values[j] for j in cap_idx.tolist()]

    # --- Timing and background noise.
    gaps = rng.uniform(*config.session_gap_s, size=n)
    noise_counts = rng.poisson(config.noise_entries_per_gap, size=n)
    total_noise = int(noise_counts.sum())
    noise_host_idx = rng.integers(0, len(NOISE_HOSTS), size=total_noise)
    noise_sizes = rng.integers(500, 200_000, size=total_noise)
    noise_ts_u = rng.random(total_noise)
    noise_transactions = rng.uniform(0.02, 1.5, size=total_noise)

    scheduled_epochs = np.empty(n, dtype=float)
    epoch = config.start_epoch_s
    for i in range(n):
        scheduled_epochs[i] = epoch
        epoch += durations[i] + gaps[i]

    profiles: List[ConditionProfile] = []
    for i, place in enumerate(places):
        profile = place.profile
        if config.diurnal is not None:
            profile = config.diurnal.scale_profile(
                profile, float(scheduled_epochs[i])
            )
        profiles.append(profile)

    subscribers = (
        ["sub-000"] * n
        if config.single_subscriber
        else [f"sub-{i:06d}" for i in range(n)]
    )

    return CorpusPlan(
        videos=videos,
        places=list(places),
        profiles=profiles,
        outages=outages,
        adaptive=adaptive,
        caps=caps,
        gaps=gaps,
        scheduled_epochs=scheduled_epochs,
        subscribers=subscribers,
        noise_counts=noise_counts,
        noise_host_idx=noise_host_idx,
        noise_sizes=noise_sizes,
        noise_ts_u=noise_ts_u,
        noise_transactions=noise_transactions,
    )


def build_noise_entries(
    plan: CorpusPlan,
    realized_epochs: Sequence[float],
    total_durations: Sequence[float],
    encrypted: bool,
) -> List[WeblogEntry]:
    """Background-traffic entries for every inter-session gap.

    Timestamps are clamped inside the session's own gap: the offset
    after session end is ``min(5, gap) + u * (gap - min(5, gap))``, so a
    noise entry can never land inside the next session's window.
    """
    entries: List[WeblogEntry] = []
    port = 443 if encrypted else 80
    cursor = 0
    host_idx = plan.noise_host_idx.tolist()
    sizes = plan.noise_sizes.tolist()
    ts_u = plan.noise_ts_u.tolist()
    transactions = plan.noise_transactions.tolist()
    for i, count in enumerate(plan.noise_counts.tolist()):
        if count == 0:
            continue
        gap = float(plan.gaps[i])
        lo = min(5.0, gap)
        span = gap - lo
        end = realized_epochs[i] + total_durations[i]
        subscriber = plan.subscribers[i]
        for j in range(cursor, cursor + count):
            host = NOISE_HOSTS[host_idx[j]]
            size = sizes[j]
            entries.append(
                WeblogEntry(
                    subscriber_id=subscriber,
                    timestamp_s=end + lo + ts_u[j] * span,
                    server_name=host,
                    server_ip=server_ip_for(host),
                    server_port=port,
                    object_bytes=size,
                    transaction_s=transactions[j],
                    rtt_min_ms=40.0,
                    rtt_avg_ms=55.0,
                    rtt_max_ms=80.0,
                    bdp_bytes=0.0,
                    bif_avg_bytes=float(min(size, 14600)),
                    bif_max_bytes=float(min(size, 14600)),
                    loss_pct=0.0,
                    retx_pct=0.0,
                    encrypted=encrypted,
                    uri=None if encrypted else f"https://{host}/page",
                )
            )
        cursor += count
    return entries
