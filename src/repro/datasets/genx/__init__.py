"""genx: the vectorized corpus engine.

Corpus generation has two interchangeable engines:

* ``"per-session"`` — the original object-per-session simulation loop
  (:class:`~repro.network.path.NetworkPath`, the player classes, the
  capture proxy), kept as the *bit-identity oracle*;
* ``"vectorized"`` — a columnar engine (:mod:`repro.datasets.genx.vector`)
  that batches all sessions' path fading, TCP rounds, player state
  machines and buffer accounting through numpy and materializes the
  same objects at the end.

Both consume one shared :class:`~repro.datasets.genx.plan.CorpusPlan`
and per-session RNG streams (:mod:`repro.datasets.genx.streams`), so a
fixed seed produces **bit-identical** corpora — identical weblog
fields, records, summaries and segment records — from either engine.
This mirrors the ``repro.core.featurex`` precedent: the slow path is
the specification, the fast path is an optimisation that must prove
itself equal.

Engine selection: explicit ``engine=`` argument >
``REPRO_CORPUS_ENGINE`` environment variable > ``DEFAULT_ENGINE``.
"""

from __future__ import annotations

import os

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "get_default_engine",
    "set_default_engine",
]

ENGINES = ("vectorized", "per-session")
DEFAULT_ENGINE = "vectorized"

_default_engine = os.environ.get("REPRO_CORPUS_ENGINE", DEFAULT_ENGINE)


def get_default_engine() -> str:
    """Corpus engine used when callers do not pass one explicitly."""
    return _default_engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default corpus engine."""
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown corpus engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    _default_engine = engine
