"""Vectorized session simulation: the columnar corpus engine.

Simulates all of a corpus's sessions together instead of one at a time,
batching the numeric heavy lifting through numpy while reproducing the
per-session engine's output *bit for bit*:

* **Path fading** — every session's AR(1) log-space recurrence runs
  through :func:`scipy.signal.lfilter` (the same multiply-add per
  element, in C); the per-step draws come from each session's own
  ``path`` stream in exactly :class:`~repro.network.path.NetworkPath`'s
  order, and the finalisation (exp, fades, outages, clamps) applies the
  same elementwise expressions to all lanes' traces concatenated flat.
* **TCP rounds** — the dominant cost of the per-session engine is the
  round-by-round Python loop in
  :meth:`~repro.network.tcp.TcpConnection.download`.  Here every active
  session's current download advances one TCP round per step across a
  compacted lane set: state lookups, bufferbloat/jitter RTTs, AIMD
  window updates and the transport accumulators are all elementwise
  array ops whose per-element operation order matches the scalar code
  (no FMA contraction, same associativity), so the resulting
  ``TransferResult`` fields are identical doubles.  Loss counts use the
  same single-uniform inverse-CDF walk as the scalar model; lanes whose
  uniform falls within a conservative margin of the k=0 probability
  mass are re-walked scalar to erase any ``np.power``-vs-``pow`` ULP
  difference.
* **Player decisions** — ABR selection, playout-buffer accounting,
  fast-start ramps and patience checks *reuse the scalar player
  helpers* (:class:`~repro.streaming.buffer.PlayoutBuffer`,
  :class:`~repro.streaming.abr.HybridAbr`, …) once per chunk, which is
  cheap; only their per-chunk size-noise normals come from a bulk
  overdraw of the session's ``player`` stream (``rng.normal(0, s)``
  consumes exactly one standard normal, so ``s * z[i]`` from a block
  draw is the identical double).

The driver is chunk-asynchronous: each outer iteration every active
session submits its next download (video or audio, whatever its state
machine wants next), the downloads execute in round-lockstep batches
per connection kind, and completions feed back into the scalar
bookkeeping.  Sessions never interact, so lane order is irrelevant to
the result.
"""

from __future__ import annotations

import math

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro.network.tcp import (
    DRAW_BLOCK,
    IDLE_RESTART_RTTS,
    INITIAL_CWND,
    MSS_BYTES,
    RTT_JITTER_SIGMA,
    SPIKE_MIN,
    SPIKE_PROB,
    SPIKE_SPAN,
    TransferResult,
    binomial_from_uniform,
)
from repro.streaming.abr import HybridAbr, ThroughputEstimator
from repro.streaming.adaptive import AdaptivePlayerConfig
from repro.streaming.buffer import PlayoutBuffer
from repro.streaming.catalog import AUDIO_LEVEL, DASH_LADDER
from repro.streaming.progressive import (
    ProgressivePlayerConfig,
    select_static_quality,
)
from repro.streaming.segments import ChunkDownload
from repro.streaming.session import VideoSession, make_session_id

from .plan import CorpusPlan
from .streams import SessionStreams

__all__ = ["simulate_sessions"]

#: Player-stream standard normals drawn per block.
_Z_BLOCK = 512

#: Conservative relative margin around the vectorized k=0 binomial mass;
#: uniforms landing above ``pmf0 * (1 - margin)`` re-walk the scalar CDF.
_POW_MARGIN = 1e-12

#: Below this many active lanes the driver drains sessions in scalar
#: form — array-op overhead per round exceeds the scalar cost.
_SCALAR_TAIL = 96

#: install()'s one-write accumulator reset: rtt_min, rtt_max, rtt_sum,
#: bif_sum, bif_max, bdp_sum, sent, lost, n_rounds (counts live as
#: floats — every value stays far below 2**53, so they are exact).
_ACC_RESET = np.array(
    [np.inf, -np.inf, 0.0, 0.0, -np.inf, 0.0, 0.0, 0.0, 0.0]
)


def _capped_ladder(cap: int):
    return [q for q in DASH_LADDER if q.resolution_p <= cap]


# ----------------------------------------------------------------------
# Paths
# ----------------------------------------------------------------------


class _PathData:
    """Flat per-step traces of every lane plus lookup offsets."""

    __slots__ = ("bw", "rtt", "loss", "off", "length", "bw0", "base_states")

    def __init__(self, n: int) -> None:
        self.off = np.empty(n, dtype=np.int64)
        self.length = np.empty(n, dtype=np.int64)
        self.bw0 = np.empty(n, dtype=np.float64)
        self.base_states: list = []


def _build_paths(plan: CorpusPlan, streams: List[SessionStreams]) -> _PathData:
    """All lanes' link-state traces, bit-identical to NetworkPath's."""
    n = plan.n_sessions
    data = _PathData(n)
    lens = np.empty(n, dtype=np.int64)
    rho = np.empty(n)
    sig_bw = np.empty(n)
    sig_rtt = np.empty(n)
    eps_bw: List[np.ndarray] = []
    eps_rtt: List[np.ndarray] = []
    burst: List[np.ndarray] = []
    burst_mag: List[np.ndarray] = []

    for i in range(n):
        profile = plan.profiles[i]
        rng = streams[i].path
        base = profile.sample(rng)
        data.base_states.append(base)
        duration_s = plan.videos[i].duration_s * 4.0 + 180.0
        k = max(2, int(np.ceil(duration_s / 1.0)) + 1)
        lens[i] = k
        r = float(np.clip(1.0 - profile.volatility, 0.5, 0.995))
        rho[i] = r
        sig_bw[i] = 0.5 * profile.bandwidth_sigma * np.sqrt(1.0 - r**2)
        sig_rtt[i] = 0.5 * profile.rtt_sigma * np.sqrt(1.0 - r**2)
        eps_bw.append(rng.normal(0.0, 1.0, size=k))
        eps_rtt.append(rng.normal(0.0, 1.0, size=k))
        burst.append(rng.random(k))
        burst_mag.append(rng.uniform(0.01, 0.08, size=k))

    # AR(1) recurrences through scipy's C filter: y[t] = x[t] + r*y[t-1]
    # with x = sigma*eps and x[0] forced to 0 performs the same multiply
    # and (commutative) add per element as NetworkPath's loop, so the
    # outputs are bit-identical.
    log_bw: List[Optional[np.ndarray]] = [None] * n
    log_rtt: List[Optional[np.ndarray]] = [None] * n
    b = [1.0]
    for i in range(n):
        a = [1.0, -rho[i]]
        x = sig_bw[i] * eps_bw[i]
        x[0] = 0.0
        log_bw[i] = lfilter(b, a, x)
        x = sig_rtt[i] * eps_rtt[i]
        x[0] = 0.0
        log_rtt[i] = lfilter(b, a, x)

    # Flat finalisation: identical elementwise expressions to
    # NetworkPath, applied to every lane's trace at once with the base
    # state broadcast along each lane's segment.
    data.length[:] = lens
    np.cumsum(lens, out=data.off)
    data.off -= lens

    base_bw = np.array([b.bandwidth_kbps for b in data.base_states])
    base_rtt = np.array([b.rtt_ms for b in data.base_states])
    base_loss = np.array([b.loss_rate for b in data.base_states])
    rep_bw = np.repeat(base_bw, lens)
    bw = rep_bw * np.exp(np.concatenate(log_bw))
    rtt = np.repeat(base_rtt, lens) * np.exp(np.concatenate(log_rtt))
    fade = np.clip(1.0 - bw / rep_bw, 0.0, 1.0)
    loss = np.repeat(base_loss, lens) * (1.0 + 4.0 * fade)
    loss = loss + (np.concatenate(burst) < 0.012) * np.concatenate(burst_mag)

    for i in range(n):
        outages = plan.outages[i]
        if not outages:
            continue
        k = int(lens[i])
        seg = slice(int(data.off[i]), int(data.off[i]) + k)
        times = np.arange(k) * 1.0
        bw_i, rtt_i, loss_i = bw[seg], rtt[seg], loss[seg]
        for outage in outages:
            mask = (times >= outage.start_s) & (times < outage.end_s)
            bw_i[mask] *= outage.factor
            rtt_i[mask] *= 1.0 + (1.0 - outage.factor)
            loss_i[mask] = np.minimum(0.5, loss_i[mask] * 3.0 + 0.01)

    data.bw = np.maximum(16.0, bw)
    data.rtt = np.maximum(5.0, rtt)
    data.loss = np.clip(loss, 0.0, 0.5)
    data.bw0[:] = data.bw[data.off]
    return data


# ----------------------------------------------------------------------
# Connections
# ----------------------------------------------------------------------


class _TcpState:
    """Per-lane connection state for one connection kind (video/audio)."""

    __slots__ = (
        "rngs",
        "cwnd",
        "ssthresh",
        "last_act",
        "bloat",
        "z",
        "spike",
        "mult",
        "loss",
        "cursor",
    )

    def __init__(
        self,
        n_lanes: int,
        rngs: List[np.random.Generator],
        lanes: Sequence[int],
    ) -> None:
        self.rngs = rngs
        self.cwnd = np.full(n_lanes, float(INITIAL_CWND))
        self.ssthresh = np.full(n_lanes, 64.0)
        self.last_act = np.full(n_lanes, np.nan)
        self.bloat = np.zeros(n_lanes)
        for i in lanes:
            # TcpConnection.__init__ draws the bufferbloat factor first.
            self.bloat[i] = float(rngs[i].uniform(0.05, 0.5))
        self.z = np.zeros((n_lanes, DRAW_BLOCK))
        self.spike = np.zeros((n_lanes, DRAW_BLOCK))
        self.mult = np.zeros((n_lanes, DRAW_BLOCK))
        self.loss = np.zeros((n_lanes, DRAW_BLOCK))
        self.cursor = np.full(n_lanes, DRAW_BLOCK, dtype=np.int64)

class _DownloadPool:
    """One in-flight download per lane, advanced in round-lockstep.

    The pool holds a working copy of the owning connection's state
    (cwnd, ssthresh, bufferbloat factor, draw block) for each lane's
    current download; :meth:`install` loads it (applying the idle
    restart) and :meth:`finish` stores it back, so consecutive
    downloads on the same connection chain exactly like the scalar
    :class:`~repro.network.tcp.TcpConnection`.  Downloads of different
    lanes share no state, so each pool round may advance lanes whose
    wall clocks differ — the lockstep is per-download round count, not
    simulated time.
    """

    __slots__ = (
        "paths",
        "tcp",
        "rngs",
        "cur_kind",
        "size",
        "start",
        "now",
        "remaining",
        "cwnd",
        "ssthresh",
        "bloat",
        "z",
        "spike",
        "mult",
        "lossb",
        "cursor",
        "acc",
        "sent",
        "lost",
        "n_rounds",
        "rtt_min",
        "rtt_max",
        "rtt_sum",
        "bif_sum",
        "bif_max",
        "bdp_sum",
    )

    def __init__(
        self, n: int, paths: _PathData, tcp_video: _TcpState, tcp_audio: _TcpState
    ) -> None:
        self.paths = paths
        self.tcp = (tcp_video, tcp_audio)
        self.rngs: List[Optional[np.random.Generator]] = [None] * n
        self.cur_kind = np.full(n, -1, dtype=np.int8)
        self.size = np.zeros(n, dtype=np.int64)
        self.start = np.zeros(n)
        self.now = np.zeros(n)
        # Segment counts fit doubles exactly; floats avoid int<->float
        # casts in the round kernel.
        self.remaining = np.zeros(n)
        self.cwnd = np.zeros(n)
        self.ssthresh = np.zeros(n)
        self.bloat = np.zeros(n)
        # Draw blocks are flat (lane-major) so the round kernel gathers
        # with one computed 1-D index instead of 2-D fancy indexing.
        self.z = np.zeros(n * DRAW_BLOCK)
        self.spike = np.zeros(n * DRAW_BLOCK)
        self.mult = np.zeros(n * DRAW_BLOCK)
        self.lossb = np.zeros(n * DRAW_BLOCK)
        self.cursor = np.zeros(n, dtype=np.int64)
        # All per-download accumulators are rows of one matrix: install()
        # resets with one column write, round() updates with one
        # gather/scatter pair, finish() extracts with one tolist().
        self.acc = np.zeros((9, n))
        self.rtt_min = self.acc[0]
        self.rtt_max = self.acc[1]
        self.rtt_sum = self.acc[2]
        self.bif_sum = self.acc[3]
        self.bif_max = self.acc[4]
        self.bdp_sum = self.acc[5]
        self.sent = self.acc[6]
        self.lost = self.acc[7]
        self.n_rounds = self.acc[8]

    def install(self, lane: int, kind: str, size: int, start: float) -> None:
        """Begin a new download on the lane's video or audio connection.

        Connection state stays resident in the pool between downloads;
        it is swapped against the parked :class:`_TcpState` store only
        when the lane switches between its video and audio connections.
        """
        ki = 0 if kind == "video" else 1
        tcp = self.tcp[ki]
        old = self.cur_kind[lane]
        if old != ki:
            base = lane * DRAW_BLOCK
            stop = base + DRAW_BLOCK
            if old >= 0:
                parked = self.tcp[old]
                parked.cwnd[lane] = self.cwnd[lane]
                parked.ssthresh[lane] = self.ssthresh[lane]
                parked.z[lane] = self.z[base:stop]
                parked.spike[lane] = self.spike[base:stop]
                parked.mult[lane] = self.mult[base:stop]
                parked.loss[lane] = self.lossb[base:stop]
                parked.cursor[lane] = self.cursor[lane]
            self.cwnd[lane] = tcp.cwnd[lane]
            self.ssthresh[lane] = tcp.ssthresh[lane]
            self.bloat[lane] = tcp.bloat[lane]
            self.z[base:stop] = tcp.z[lane]
            self.spike[base:stop] = tcp.spike[lane]
            self.mult[base:stop] = tcp.mult[lane]
            self.lossb[base:stop] = tcp.loss[lane]
            self.cursor[lane] = tcp.cursor[lane]
            self.rngs[lane] = tcp.rngs[lane]
            self.cur_kind[lane] = ki
        last = float(tcp.last_act[lane])
        if last == last:  # not NaN: the connection has a previous download
            i0 = int(start)
            limit = int(self.paths.length[lane]) - 1
            if i0 < 0:
                i0 = 0
            elif i0 > limit:
                i0 = limit
            rtt_s = float(self.paths.rtt[int(self.paths.off[lane]) + i0]) / 1000.0
            if start - last > IDLE_RESTART_RTTS * rtt_s:
                self.cwnd[lane] = float(INITIAL_CWND)
        self.size[lane] = size
        self.start[lane] = start
        self.now[lane] = start
        self.remaining[lane] = math.ceil(size / MSS_BYTES)
        self.acc[:, lane] = _ACC_RESET

    def refill(self, lane: int) -> None:
        """RoundDraws._refill, lane-local: same four blocks, same order."""
        rng = self.rngs[lane]
        base = lane * DRAW_BLOCK
        stop = base + DRAW_BLOCK
        self.z[base:stop] = rng.standard_normal(DRAW_BLOCK)
        self.spike[base:stop] = rng.random(DRAW_BLOCK)
        self.mult[base:stop] = rng.random(DRAW_BLOCK)
        self.lossb[base:stop] = rng.random(DRAW_BLOCK)
        self.cursor[lane] = 0

    def round(self, act: np.ndarray) -> np.ndarray:
        """Advance every lane in ``act`` by one TCP round.

        Per-element operation order matches TcpConnection.download
        exactly; see the module docstring for why that yields identical
        doubles.  Returns the mask of lanes whose download completed.
        """
        paths = self.paths
        cur = self.cursor[act]
        exhausted = cur >= DRAW_BLOCK
        if exhausted.any():
            for lane in act[exhausted].tolist():
                self.refill(lane)
            cur = self.cursor[act]
        gidx = act * DRAW_BLOCK + cur
        z = self.z[gidx]
        u_spike = self.spike[gidx]
        u_mult = self.mult[gidx]
        u_loss = self.lossb[gidx]
        self.cursor[act] = cur + 1

        nw = self.now[act]
        # now >= the request time >= the signalling delay > 0, so only
        # the upper clamp of the scalar state lookup can engage.
        idx = np.minimum(nw.astype(np.int64), paths.length[act] - 1)
        ptr = paths.off[act] + idx
        s_bw = paths.bw[ptr]
        s_rtt = paths.rtt[ptr]
        s_loss = paths.loss[ptr]

        rem = self.remaining[act]
        cw = self.cwnd[act]
        in_f = np.maximum(1.0, np.trunc(np.minimum(cw, rem)))
        bif_f = in_f * float(MSS_BYTES)

        cap_bps = s_bw * 1000.0 / 8.0
        bdp = cap_bps * (s_rtt / 1000.0)
        overshoot = np.maximum(0.0, bif_f / np.maximum(bdp, 1.0) - 1.0)
        jitter = RTT_JITTER_SIGMA * z
        rtt_ms = s_rtt * np.maximum(
            0.5, (1.0 + self.bloat[act] * np.minimum(overshoot, 3.0)) + jitter
        )
        rtt_ms = np.where(
            u_spike < SPIKE_PROB, rtt_ms * (SPIKE_MIN + SPIKE_SPAN * u_mult), rtt_ms
        )
        rtt_s = rtt_ms / 1000.0
        round_s = np.maximum(rtt_s, bif_f / cap_bps)

        # Loss counts: vectorized k=0 and certain-k=1 shortcuts (the
        # scalar walk's first CDF step uses the same multiply/add
        # grouping, so only np.power's ULP on the k=0 mass separates
        # them); lanes whose uniform lands within the conservative
        # margin of either boundary — or beyond the k=1 mass — re-walk
        # the scalar CDF.
        q = 1.0 - s_loss
        pmf0 = np.power(q, in_f)
        losses = np.zeros(act.size)
        maybe = u_loss > pmf0 * (1.0 - _POW_MARGIN)
        if maybe.any():
            cdf1 = pmf0 + pmf0 * (in_f * (s_loss / q))
            one = (
                maybe
                & (u_loss > pmf0 * (1.0 + _POW_MARGIN))
                & ((u_loss < cdf1 * (1.0 - _POW_MARGIN)) | (in_f == 1.0))
            )
            losses[one] = 1.0
            walk = np.flatnonzero(maybe & ~one)
            for j in walk.tolist():
                losses[j] = binomial_from_uniform(
                    float(u_loss[j]), int(in_f[j]), float(s_loss[j])
                )

        rem_new = rem - (in_f - losses)
        self.remaining[act] = rem_new

        loss_mask = losses > 0.0
        half = np.maximum(2.0, cw / 2.0)
        st_old = self.ssthresh[act]
        self.cwnd[act] = np.where(
            loss_mask,
            half,
            np.where(cw < st_old, np.minimum(cw * 2.0, st_old), cw + 1.0),
        )
        self.ssthresh[act] = np.where(loss_mask, half, st_old)
        round_s = np.where(loss_mask, round_s + rtt_s, round_s)

        cols = self.acc[:, act]
        np.minimum(cols[0], rtt_ms, out=cols[0])
        np.maximum(cols[1], rtt_ms, out=cols[1])
        cols[2] += rtt_ms
        cols[3] += bif_f
        np.maximum(cols[4], bif_f, out=cols[4])
        cols[5] += bdp
        cols[6] += in_f
        cols[7] += losses
        cols[8] += 1.0
        self.acc[:, act] = cols

        self.now[act] = nw + round_s
        return rem_new <= 0.0

    def finish_scalar(self, lane: int) -> None:
        """Run the lane's current download to completion in scalar form.

        Same per-round operations as :meth:`round` on python floats —
        cheaper once the active set is too narrow to amortise array
        overhead (the long tail of the longest sessions).
        """
        paths = self.paths
        off = int(paths.off[lane])
        limit = int(paths.length[lane]) - 1
        bw_t = paths.bw
        rtt_t = paths.rtt
        loss_t = paths.loss
        rng = self.rngs[lane]
        base = lane * DRAW_BLOCK
        stop = base + DRAW_BLOCK
        z_blk = self.z[base:stop]
        sp_blk = self.spike[base:stop]
        mu_blk = self.mult[base:stop]
        lo_blk = self.lossb[base:stop]
        cursor = int(self.cursor[lane])
        now = float(self.now[lane])
        remaining = int(self.remaining[lane])
        cwnd = float(self.cwnd[lane])
        ssthresh = float(self.ssthresh[lane])
        bloat = float(self.bloat[lane])
        sent = int(self.sent[lane])
        lost = int(self.lost[lane])
        n_rounds = int(self.n_rounds[lane])
        rtt_min = float(self.rtt_min[lane])
        rtt_max = float(self.rtt_max[lane])
        rtt_sum = float(self.rtt_sum[lane])
        bif_sum = float(self.bif_sum[lane])
        bif_max = float(self.bif_max[lane])
        bdp_sum = float(self.bdp_sum[lane])

        while remaining > 0:
            if cursor >= DRAW_BLOCK:
                z_blk = rng.standard_normal(DRAW_BLOCK)
                sp_blk = rng.random(DRAW_BLOCK)
                mu_blk = rng.random(DRAW_BLOCK)
                lo_blk = rng.random(DRAW_BLOCK)
                cursor = 0
            z = float(z_blk[cursor])
            u_spike = float(sp_blk[cursor])
            u_mult = float(mu_blk[cursor])
            u_loss = float(lo_blk[cursor])
            cursor += 1

            i = int(now)
            if i < 0:
                i = 0
            elif i > limit:
                i = limit
            s_bw = float(bw_t[off + i])
            s_rtt = float(rtt_t[off + i])
            s_loss = float(loss_t[off + i])

            in_flight = max(1, int(min(cwnd, remaining)))
            bif = in_flight * MSS_BYTES
            capacity_bps = s_bw * 1000.0 / 8.0
            bdp = s_bw * 1000.0 / 8.0 * (s_rtt / 1000.0)
            overshoot = max(0.0, bif / max(bdp, 1.0) - 1.0)
            jitter = RTT_JITTER_SIGMA * z
            rtt_ms = s_rtt * max(0.5, (1.0 + bloat * min(overshoot, 3.0)) + jitter)
            if u_spike < SPIKE_PROB:
                rtt_ms *= SPIKE_MIN + SPIKE_SPAN * u_mult
            rtt_s = rtt_ms / 1000.0
            round_s = max(rtt_s, bif / capacity_bps)

            losses = binomial_from_uniform(u_loss, in_flight, s_loss)
            sent += in_flight
            lost += losses
            remaining -= in_flight - losses
            if losses > 0:
                ssthresh = max(2.0, cwnd / 2.0)
                cwnd = ssthresh
                round_s += rtt_s
            elif cwnd < ssthresh:
                cwnd = min(cwnd * 2.0, ssthresh)
            else:
                cwnd += 1.0

            n_rounds += 1
            rtt_min = min(rtt_min, rtt_ms)
            rtt_max = max(rtt_max, rtt_ms)
            rtt_sum += rtt_ms
            fbif = float(bif)
            bif_sum += fbif
            bif_max = max(bif_max, fbif)
            bdp_sum += bdp
            now += round_s

        self.z[base:stop] = z_blk
        self.spike[base:stop] = sp_blk
        self.mult[base:stop] = mu_blk
        self.lossb[base:stop] = lo_blk
        self.cursor[lane] = cursor
        self.now[lane] = now
        self.remaining[lane] = remaining
        self.cwnd[lane] = cwnd
        self.ssthresh[lane] = ssthresh
        self.sent[lane] = sent
        self.lost[lane] = lost
        self.n_rounds[lane] = n_rounds
        self.rtt_min[lane] = rtt_min
        self.rtt_max[lane] = rtt_max
        self.rtt_sum[lane] = rtt_sum
        self.bif_sum[lane] = bif_sum
        self.bif_max[lane] = bif_max
        self.bdp_sum[lane] = bdp_sum

    def finish(self, lane: int) -> TransferResult:
        """Record the connection's idle mark and build the result.

        The rest of the connection state stays resident in the pool for
        the lane's next download (see :meth:`install`).
        """
        self.tcp[self.cur_kind[lane]].last_act[lane] = self.now[lane]

        (
            rtt_min,
            rtt_max,
            rtt_sum,
            bif_sum,
            bif_max,
            bdp_sum,
            sent,
            lost,
            n_rounds,
        ) = self.acc[:, lane].tolist()
        start = float(self.start[lane])
        loss_pct = 100.0 * lost / sent
        return TransferResult(
            int(self.size[lane]),
            start,
            float(self.now[lane]) - start,
            rtt_min,
            rtt_sum / n_rounds,
            rtt_max,
            loss_pct,
            loss_pct,
            bif_sum / n_rounds,
            bif_max,
            bdp_sum / n_rounds,
        )


# ----------------------------------------------------------------------
# Player lanes
# ----------------------------------------------------------------------


class _NoiseStream:
    """Bulk standard-normal overdraw of one player stream.

    Each chunk consumes one normal; the lane needs ``exp(sigma * z)``
    for one or two fixed sigmas, so whole blocks are exponentiated at
    refill (``np.exp`` on a contiguous block matches the scalar call
    bitwise) and handed out as Python floats.
    """

    __slots__ = ("rng", "_sig_a", "_sig_b", "_ea", "_eb", "_i")

    def __init__(
        self,
        rng: np.random.Generator,
        sigma_a: float,
        sigma_b: Optional[float] = None,
    ) -> None:
        self.rng = rng
        self._sig_a = sigma_a
        self._sig_b = sigma_b
        self._refill()

    def _refill(self) -> None:
        z = self.rng.standard_normal(_Z_BLOCK)
        self._ea = np.exp(self._sig_a * z).tolist()
        self._eb = (
            np.exp(self._sig_b * z).tolist() if self._sig_b is not None else None
        )
        self._i = 0

    def next_a(self) -> float:
        i = self._i
        if i >= _Z_BLOCK:
            self._refill()
            i = 0
        self._i = i + 1
        return self._ea[i]

    def next_b(self) -> float:
        i = self._i
        if i >= _Z_BLOCK:
            self._refill()
            i = 0
        self._i = i + 1
        return self._eb[i]


class _ProgressiveLane:
    """Progressive player state machine, one download per step.

    Mirrors ProgressivePlayer.play line for line; the playout buffer,
    quality selection and patience draw are the scalar implementations.
    """

    kind = "progressive"

    def __init__(self, video, place, base_bandwidth_kbps, player_rng, cfg):
        self.cfg = cfg
        self.video = video
        self.place = place
        self.quality = select_static_quality(
            cfg.ladder, video, base_bandwidth_kbps, player_rng
        )
        self.patience_s = float(
            player_rng.gamma(shape=4.0, scale=cfg.mean_patience_stall_s / 4.0)
        )
        self.bitrate = video.bitrate_kbps(self.quality)
        self.buffer = PlayoutBuffer(
            startup_threshold_s=cfg.startup_threshold_s,
            rebuffer_threshold_s=cfg.rebuffer_threshold_s,
        )
        self.zs = _NoiseStream(player_rng, cfg.size_noise_sigma)
        self.chunks: List[ChunkDownload] = []
        self.now = cfg.initial_signalling_s
        self.buffer.advance_to(self.now)
        self.media_pos = 0.0
        self.abandoned = False
        self.index = 0
        self.refill_media: Optional[float] = None
        self.end = 0.0
        self._media = 0.0
        self._dur = video.duration_s
        self._pace_high = cfg.pace_high_s
        self._pace_low = cfg.pace_low_s
        self._min_block = cfg.min_block_media_s
        self._max_block = cfg.max_block_media_s
        self._initial_block = cfg.initial_block_media_s
        self._gap = cfg.request_gap_s

    def next_request(self) -> Tuple[str, int, float]:
        buf = self.buffer
        if (
            buf.playback_started
            and buf._stalled_since is None
            and buf.level_s >= self._pace_high
        ):
            self.now += buf.level_s - self._pace_low
            buf.advance_to(self.now)

        if self.refill_media is not None:
            block_media = self.refill_media
            self.refill_media = min(self._max_block, self.refill_media * 1.6)
            if self.refill_media >= self._max_block:
                self.refill_media = None
        elif self.index == 0:
            block_media = self._initial_block
        else:
            block_media = self._max_block
        remaining = self._dur - self.media_pos
        media = min(block_media, remaining)
        if remaining - media < self._min_block:
            media = remaining
        media = max(media, 0.25)
        size = max(1, int(self.bitrate * media * 1000.0 / 8.0 * self.zs.next_a()))
        self._media = media
        return ("video", size, self.now)

    def on_complete(self, transfer: TransferResult) -> bool:
        buf = self.buffer
        media = self._media
        self.chunks.append(
            ChunkDownload(
                self.index,
                "video",
                self.quality,
                media,
                transfer.bytes,
                transfer,
            )
        )
        self.index += 1
        self.media_pos += media

        stalls_before = len(buf.stalls)
        end_s = transfer.start_s + transfer.duration_s
        buf.add_media_run(
            transfer.start_s,
            end_s - transfer.start_s,
            max(1, math.ceil(media)),
            media,
        )
        now = end_s

        if len(buf.stalls) > stalls_before or buf._stalled_since is not None:
            self.refill_media = self._min_block
        now += self._gap
        self.now = now

        ongoing = now - buf._stalled_since if buf._stalled_since is not None else 0.0
        if buf._stall_total_s + ongoing > self.patience_s:
            self.abandoned = True
            return self._finalize()
        if self.media_pos >= self._dur - 1e-9:
            return self._finalize()
        return False

    def _finalize(self) -> bool:
        buf = self.buffer
        buf.advance_to(self.now)
        if self.abandoned or not buf.playback_started:
            end = self.now
        else:
            end = self.now + buf.level_s
        buf.finish(end)
        self.end = end
        return True

    def materialize(self, ident_rng: np.random.Generator) -> VideoSession:
        return VideoSession(
            session_id=make_session_id(ident_rng),
            video=self.video,
            kind=self.kind,
            place=self.place.name,
            chunks=self.chunks,
            stalls=self.buffer.stalls,
            startup_delay_s=self.buffer.startup_delay_s,
            total_duration_s=max(self.end, 1e-3),
            abandoned=self.abandoned,
        )


class _AdaptiveLane:
    """DASH player state machine; mirrors AdaptivePlayer.play."""

    kind = "adaptive"

    def __init__(self, video, place, bw0_kbps, player_rng, cfg, abr):
        self.cfg = cfg
        self.abr = abr
        self.video = video
        self.place = place
        self.estimator = ThroughputEstimator()
        if cfg.initial_bandwidth_hint:
            hint = 0.6 * bw0_kbps * float(
                np.exp(player_rng.normal(0.0, cfg.bandwidth_hint_noise_sigma))
            )
            self.estimator.update(max(16.0, hint))
        self.patience_s = float(
            player_rng.gamma(shape=4.0, scale=cfg.mean_patience_stall_s / 4.0)
        )
        self.buffer = PlayoutBuffer(
            startup_threshold_s=cfg.startup_threshold_s,
            rebuffer_threshold_s=cfg.rebuffer_threshold_s,
        )
        self.zs = _NoiseStream(player_rng, cfg.size_noise_sigma, 0.05)
        self.chunks: List[ChunkDownload] = []
        self.now = cfg.initial_signalling_s
        self.buffer.advance_to(self.now)
        self.media_pos = 0.0
        self.audio_pos = 0.0
        self.request_media = cfg.segment_media_s
        self.current = None
        self.emergency = False
        self.abandoned = False
        self.index = 0
        self.end = 0.0
        self._min_quality = min(cfg.ladder, key=lambda q: q.bitrate_kbps)
        self._phase = "video"
        self._media = 0.0
        self._quality = None
        self._audio_media = 0.0
        self._finished = False
        self._dur = video.duration_s
        self._max_buffer = cfg.max_buffer_s
        self._refill_level = cfg.max_buffer_s - cfg.refill_margin_s
        self._resume_level = cfg.rebuffer_threshold_s + 4.0
        self._faststart = cfg.faststart_media_s
        self._segment = cfg.segment_media_s
        self._gap = cfg.request_gap_s
        self._audio_seg = cfg.audio_segment_media_s
        self._include_audio = cfg.include_audio

    # -- request side ---------------------------------------------------

    def next_request(self) -> Tuple[str, int, float]:
        if self._phase == "audio":
            return self._audio_request()
        buf = self.buffer
        if (
            buf.playback_started
            and buf._stalled_since is None
            and buf.level_s >= self._max_buffer
        ):
            self.now += buf.level_s - self._refill_level
            buf.advance_to(self.now)

        if self.emergency and buf.level_s > self._resume_level:
            self.emergency = False
        quality = self.abr.select(
            self.cfg.ladder,
            self.video,
            self.estimator.estimate_kbps,
            buf.level_s,
            self.current,
            playback_started=buf.playback_started,
        )
        if self.emergency:
            quality = self._min_quality
        if self.current is not None and quality.itag != self.current.itag:
            self.request_media = self._faststart
        self.current = quality

        remaining = self._dur - self.media_pos
        media = min(self.request_media, remaining)
        if remaining - media < 2.0:
            media = remaining
        media = max(media, 0.25)
        size = max(
            1,
            int(
                self.video.bitrate_kbps(quality)
                * media
                * 1000.0
                / 8.0
                * self.zs.next_a()
            ),
        )
        self._media = media
        self._quality = quality
        return ("video", size, self.now)

    def _audio_request(self) -> Tuple[str, int, float]:
        behind = self.media_pos - self.audio_pos
        audio_media = min(self._audio_seg, behind)
        if self._finished and behind < 2.0 * self._audio_seg:
            audio_media = behind
        size = max(
            1,
            int(
                AUDIO_LEVEL.bitrate_kbps
                * audio_media
                * 1000.0
                / 8.0
                * self.zs.next_b()
            ),
        )
        self._audio_media = audio_media
        return ("audio", size, self.now)

    # -- completion side ------------------------------------------------

    def _audio_pending(self) -> bool:
        return self.media_pos - self.audio_pos >= self._audio_seg or (
            self._finished and self.audio_pos < self.media_pos
        )

    def on_complete(self, transfer: TransferResult) -> bool:
        if self._phase == "audio":
            return self._audio_complete(transfer)
        buf = self.buffer
        media = self._media
        self.chunks.append(
            ChunkDownload(
                self.index,
                "video",
                self._quality,
                media,
                transfer.bytes,
                transfer,
            )
        )
        self.index += 1
        end_s = transfer.start_s + transfer.duration_s
        self.now = end_s
        self.estimator.update(transfer.throughput_kbps)
        self.media_pos += media

        stalls_before = len(buf.stalls)
        buf.add_media_run(
            transfer.start_s,
            end_s - transfer.start_s,
            max(1, math.ceil(media)),
            media,
        )
        if len(buf.stalls) > stalls_before or buf._stalled_since is not None:
            self.request_media = self._faststart
            self.emergency = True

        if self._include_audio:
            self._finished = self.media_pos >= self._dur - 1e-9
            if self._audio_pending():
                self._phase = "audio"
                return False
        return self._post_chunk()

    def _audio_complete(self, transfer: TransferResult) -> bool:
        self.chunks.append(
            ChunkDownload(
                self.index,
                "audio",
                AUDIO_LEVEL,
                self._audio_media,
                transfer.bytes,
                transfer,
            )
        )
        self.index += 1
        self.now = transfer.start_s + transfer.duration_s
        self.audio_pos += self._audio_media
        if self._audio_pending():
            return False
        self._phase = "video"
        return self._post_chunk()

    def _post_chunk(self) -> bool:
        buf = self.buffer
        now = self.now
        buf.advance_to(now)
        self.request_media = min(self._segment, self.request_media * 1.6)
        now += self._gap
        self.now = now

        ongoing = now - buf._stalled_since if buf._stalled_since is not None else 0.0
        if buf._stall_total_s + ongoing > self.patience_s:
            self.abandoned = True
            return self._finalize()
        if self.media_pos >= self._dur - 1e-9:
            return self._finalize()
        return False

    def _finalize(self) -> bool:
        buf = self.buffer
        buf.advance_to(self.now)
        if self.abandoned or not buf.playback_started:
            end = self.now
        else:
            end = self.now + buf.level_s
        buf.finish(end)
        self.end = end
        return True

    def materialize(self, ident_rng: np.random.Generator) -> VideoSession:
        return VideoSession(
            session_id=make_session_id(ident_rng),
            video=self.video,
            kind=self.kind,
            place=self.place.name,
            chunks=self.chunks,
            stalls=self.buffer.stalls,
            startup_delay_s=self.buffer.startup_delay_s,
            total_duration_s=max(self.end, 1e-3),
            abandoned=self.abandoned,
        )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def simulate_sessions(
    plan: CorpusPlan, streams: List[SessionStreams]
) -> List[VideoSession]:
    """Simulate every planned session; bit-identical to the oracle."""
    n = plan.n_sessions
    if n == 0:
        return []
    paths = _build_paths(plan, streams)
    adaptive = plan.adaptive.tolist()

    tcp_video = _TcpState(n, [st.tcp_video for st in streams], range(n))
    tcp_audio = _TcpState(
        n,
        [st.tcp_audio for st in streams],
        [i for i in range(n) if adaptive[i]],
    )
    abr = HybridAbr()

    lanes: list = []
    for i in range(n):
        if adaptive[i]:
            lanes.append(
                _AdaptiveLane(
                    plan.videos[i],
                    plan.places[i],
                    float(paths.bw0[i]),
                    streams[i].player,
                    AdaptivePlayerConfig(ladder=_capped_ladder(plan.caps[i])),
                    abr,
                )
            )
        else:
            lanes.append(
                _ProgressiveLane(
                    plan.videos[i],
                    plan.places[i],
                    paths.base_states[i].bandwidth_kbps,
                    streams[i].player,
                    ProgressivePlayerConfig(),
                )
            )

    pool = _DownloadPool(n, paths, tcp_video, tcp_audio)
    for i in range(n):
        kind, size, start = lanes[i].next_request()
        pool.install(i, kind, size, start)

    active = np.arange(n, dtype=np.int64)
    while active.size > _SCALAR_TAIL:
        done = pool.round(active)
        if done.any():
            keep = ~done
            for j in np.flatnonzero(done).tolist():
                lane = int(active[j])
                result = pool.finish(lane)
                if not lanes[lane].on_complete(result):
                    kind, size, start = lanes[lane].next_request()
                    pool.install(lane, kind, size, start)
                    keep[j] = True
            active = active[keep]

    # Drain the stragglers scalar: with only a few lanes left, array
    # overhead per round dwarfs the work, and the longest sessions can
    # run tens of thousands of rounds past the rest of the corpus.
    for lane in active.tolist():
        while True:
            pool.finish_scalar(lane)
            result = pool.finish(lane)
            if lanes[lane].on_complete(result):
                break
            kind, size, start = lanes[lane].next_request()
            pool.install(lane, kind, size, start)

    return [lanes[i].materialize(streams[i].ident) for i in range(n)]
