"""Corpus generators.

Two corpora mirror the paper's two datasets:

* **Cleartext corpus** (§3.1): sessions from many subscribers of the
  operator, dominated by legacy progressive players ("only 3% of these
  are adaptive streaming sessions"), observed by the proxy in
  cleartext so URIs provide ground truth.
* **Encrypted corpus** (§5.2): 722 sessions from a single instrumented
  commuter device, encrypted end-to-end, with device-side ground truth
  and weblog-side traffic that must be regrouped by the reconstruction
  heuristic.

A third helper generates an all-adaptive corpus for the HAS-only
experiments (average representation, quality switching) — the paper
derives those from the adaptive subset of its dataset.

Engines
-------
Generation runs on one of two engines (``repro.datasets.genx``):
``"per-session"`` simulates each session through the original
object-per-session classes and is the bit-identity oracle;
``"vectorized"`` batches the path fading and TCP rounds of all
sessions through numpy.  Both consume the same pre-drawn
:class:`~repro.datasets.genx.plan.CorpusPlan` and per-session RNG
streams, so a fixed seed yields bit-identical corpora either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.capture.device import DeviceLogger, PlaybackSummary, SegmentRecord
from repro.capture.proxy import WebProxy
from repro.capture.reconstruction import SessionReconstructor
from repro.capture.weblog import WeblogEntry
from repro.network.diurnal import DiurnalLoadModel
from repro.network.mobility import COMMUTER_USER, STATIC_USER, MobilityModel
from repro.network.path import NetworkPath
from repro.network.tcp import TcpConnection
from repro.obs import get_registry
from repro.streaming.adaptive import AdaptivePlayer, AdaptivePlayerConfig
from repro.streaming.catalog import DASH_LADDER, VideoCatalog
from repro.streaming.progressive import ProgressivePlayer
from repro.streaming.session import VideoSession

from . import genx
from .genx.plan import NOISE_HOSTS, CorpusPlan, build_noise_entries, build_plan
from .genx.streams import SessionStreams, corpus_streams
from .preparation import (
    group_cleartext_sessions,
    records_from_reconstruction,
)
from .schema import SessionRecord

__all__ = [
    "CorpusConfig",
    "Corpus",
    "generate_corpus",
    "generate_cleartext_corpus",
    "generate_adaptive_corpus",
    "generate_encrypted_corpus",
]

#: Screen/data-plan quality caps users impose on adaptive playback
#: (§4.2: "videos are streamed using limited mobile data plans and on
#: handheld devices that often come with smaller screens which leads
#: users to opt for LD and SD video qualities").
DEFAULT_QUALITY_CAPS: Dict[int, float] = {
    240: 0.46,
    360: 0.26,
    480: 0.21,
    720: 0.05,
    1080: 0.02,
}

# Backwards-compatible alias; the hosts now live with the plan builder.
_NOISE_HOSTS = NOISE_HOSTS

_REG = get_registry()
_SESSIONS_TOTAL = _REG.counter(
    "repro_datasets_sessions_total",
    "Sessions generated into corpora, by engine.",
    labelnames=("engine",),
)
_GENERATION_SECONDS = _REG.histogram(
    "repro_datasets_generation_seconds",
    "Wall-clock seconds per corpus generation run.",
    labelnames=("engine",),
)
_SESSIONS_PER_SECOND = _REG.gauge(
    "repro_datasets_sessions_per_second",
    "Sessions per second of the most recent corpus generation run.",
    labelnames=("engine",),
)


@dataclass
class CorpusConfig:
    """Parameters of a corpus generation run."""

    n_sessions: int
    seed: int = 0
    adaptive_fraction: float = 0.03
    mobility: MobilityModel = field(default_factory=lambda: STATIC_USER)
    quality_caps: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_QUALITY_CAPS)
    )
    encrypted: bool = False
    single_subscriber: bool = False
    session_gap_s: Tuple[float, float] = (60.0, 1800.0)
    noise_entries_per_gap: float = 2.0
    mean_video_duration_s: float = 180.0
    #: Probability that a session's path suffers transient coverage dips
    #: (handovers, tunnels, cell congestion bursts).  These are what
    #: produce *mild* stalls and mid-session quality switches on
    #: otherwise healthy links.
    transient_outage_prob: float = 0.15
    transient_outage_count: Tuple[int, int] = (1, 3)
    transient_outage_duration_s: Tuple[float, float] = (12.0, 45.0)
    transient_outage_factor: Tuple[float, float] = (0.03, 0.20)
    #: Optional time-of-day load model: sessions generated during busy
    #: hours see reduced capacity (and more QoE issues).
    diurnal: Optional[DiurnalLoadModel] = None
    #: Epoch of the first session (seconds; 0 = midnight of day one).
    start_epoch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_sessions < 0:
            raise ValueError("n_sessions must be >= 0")
        if not 0.0 <= self.adaptive_fraction <= 1.0:
            raise ValueError("adaptive_fraction must be in [0, 1]")


@dataclass
class Corpus:
    """A generated corpus: simulation truth + capture views."""

    sessions: List[VideoSession]
    records: List[SessionRecord]
    weblogs: List[WeblogEntry]
    summaries: List[PlaybackSummary]
    segment_records: List[SegmentRecord]

    def adaptive_records(self) -> List[SessionRecord]:
        return [r for r in self.records if r.kind == "adaptive"]

    def records_with_stall_truth(self) -> List[SessionRecord]:
        return [
            r
            for r in self.records
            if r.stall_duration_s is not None and r.total_duration_s
        ]


def _capped_ladder(cap: int):
    return [q for q in DASH_LADDER if q.resolution_p <= cap]


def _simulate_sessions_oracle(
    plan: CorpusPlan, streams: List[SessionStreams]
) -> List[VideoSession]:
    """Per-session reference engine: the original simulation classes."""
    sessions: List[VideoSession] = []
    adaptive = plan.adaptive.tolist()
    for i, video in enumerate(plan.videos):
        st = streams[i]
        place = plan.places[i]
        path = NetworkPath(
            plan.profiles[i],
            video.duration_s * 4.0 + 180.0,
            st.path,
            outages=plan.outages[i],
        )
        if adaptive[i]:
            player = AdaptivePlayer(
                AdaptivePlayerConfig(ladder=_capped_ladder(plan.caps[i]))
            )
            session = player.play(
                video,
                path,
                st.player,
                place=place.name,
                video_conn=TcpConnection(path, st.tcp_video),
                audio_conn=TcpConnection(path, st.tcp_audio),
                id_rng=st.ident,
            )
        else:
            session = ProgressivePlayer().play(
                video,
                path,
                st.player,
                place=place.name,
                conn=TcpConnection(path, st.tcp_video),
                id_rng=st.ident,
            )
        sessions.append(session)
    return sessions


def generate_corpus(config: CorpusConfig, engine: Optional[str] = None) -> Corpus:
    """Simulate sessions, capture them through the proxy, prepare records.

    ``engine`` selects the simulation engine (defaults to the
    process-wide :func:`repro.datasets.genx.get_default_engine`); both
    engines produce bit-identical corpora for the same config.
    """
    if engine is None:
        engine = genx.get_default_engine()
    if engine not in genx.ENGINES:
        raise ValueError(
            f"unknown corpus engine {engine!r}; known: {', '.join(genx.ENGINES)}"
        )
    started = time.perf_counter()

    catalog = VideoCatalog(mean_duration_s=config.mean_video_duration_s)
    plan_rng, streams = corpus_streams(config.seed, config.n_sessions)
    plan = build_plan(config, plan_rng, catalog)

    if engine == "vectorized":
        from .genx.vector import simulate_sessions

        sessions = simulate_sessions(plan, streams)
    else:
        sessions = _simulate_sessions_oracle(plan, streams)

    # --- Everything after simulation is engine-independent. -----------
    # Realized epochs: each session starts where the previous one ended
    # plus the planned gap.
    realized_epochs: List[float] = []
    total_durations: List[float] = []
    epoch = config.start_epoch_s
    gaps = plan.gaps.tolist()
    for i, session in enumerate(sessions):
        realized_epochs.append(epoch)
        total_durations.append(session.total_duration_s)
        epoch += session.total_duration_s + gaps[i]

    proxy = WebProxy()
    device = DeviceLogger()
    weblogs: List[WeblogEntry] = []
    summaries: List[PlaybackSummary] = []
    segment_records: List[SegmentRecord] = []
    for i, session in enumerate(sessions):
        weblogs.extend(
            proxy.observe(
                session,
                subscriber_id=plan.subscribers[i],
                start_epoch_s=realized_epochs[i],
                encrypted=config.encrypted,
                rng=streams[i].proxy,
            )
        )
        summaries.append(device.playback_summary(session))
        segment_records.extend(
            device.segment_records(session, start_epoch_s=realized_epochs[i])
        )
    weblogs.extend(
        build_noise_entries(
            plan, realized_epochs, total_durations, config.encrypted
        )
    )

    weblogs.sort(key=lambda e: e.timestamp_s)

    if config.encrypted:
        reconstructor = SessionReconstructor()
        by_subscriber: Dict[str, List[WeblogEntry]] = {}
        for entry in weblogs:
            by_subscriber.setdefault(entry.subscriber_id, []).append(entry)
        reconstructed = []
        for entries in by_subscriber.values():
            reconstructed.extend(reconstructor.reconstruct(entries))
        records = records_from_reconstruction(
            reconstructed, summaries, segment_records
        )
    else:
        records = group_cleartext_sessions(weblogs)

    elapsed = time.perf_counter() - started
    _SESSIONS_TOTAL.labels(engine=engine).inc(len(sessions))
    _GENERATION_SECONDS.labels(engine=engine).observe(elapsed)
    if elapsed > 0:
        _SESSIONS_PER_SECOND.labels(engine=engine).set(len(sessions) / elapsed)

    return Corpus(
        sessions=sessions,
        records=records,
        weblogs=weblogs,
        summaries=summaries,
        segment_records=segment_records,
    )


def generate_cleartext_corpus(
    n_sessions: int,
    seed: int = 0,
    adaptive_fraction: float = 0.03,
    engine: Optional[str] = None,
) -> Corpus:
    """The §3.1-style operator corpus (legacy-heavy, cleartext)."""
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=adaptive_fraction,
            mobility=STATIC_USER,
        ),
        engine=engine,
    )


def generate_adaptive_corpus(
    n_sessions: int,
    seed: int = 0,
    transient_outage_prob: float = 0.45,
    engine: Optional[str] = None,
) -> Corpus:
    """All-HAS cleartext corpus for the representation experiments.

    Transient dips are more frequent than in the default corpus so both
    populations of Figure 4 (with/without quality switches) are well
    represented.
    """
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=1.0,
            mobility=STATIC_USER,
            transient_outage_prob=transient_outage_prob,
        ),
        engine=engine,
    )


def generate_encrypted_corpus(
    n_sessions: int = 722,
    seed: int = 42,
    adaptive_fraction: float = 1.0,
    engine: Optional[str] = None,
) -> Corpus:
    """The §5.2 instrumented-commuter corpus (encrypted, one subscriber).

    The stock Android app always streams adaptively, so the default is
    all-HAS; the commuter mobility makes degraded conditions (and thus
    stalls and low/variable qualities) more frequent than in the
    cleartext corpus, reproducing the §5.3 distribution shift.
    """
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=adaptive_fraction,
            mobility=COMMUTER_USER,
            encrypted=True,
            single_subscriber=True,
        ),
        engine=engine,
    )
