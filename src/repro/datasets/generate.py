"""Corpus generators.

Two corpora mirror the paper's two datasets:

* **Cleartext corpus** (§3.1): sessions from many subscribers of the
  operator, dominated by legacy progressive players ("only 3% of these
  are adaptive streaming sessions"), observed by the proxy in
  cleartext so URIs provide ground truth.
* **Encrypted corpus** (§5.2): 722 sessions from a single instrumented
  commuter device, encrypted end-to-end, with device-side ground truth
  and weblog-side traffic that must be regrouped by the reconstruction
  heuristic.

A third helper generates an all-adaptive corpus for the HAS-only
experiments (average representation, quality switching) — the paper
derives those from the adaptive subset of its dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.capture.device import DeviceLogger, PlaybackSummary, SegmentRecord
from repro.capture.proxy import WebProxy, server_ip_for
from repro.capture.reconstruction import SessionReconstructor
from repro.capture.weblog import WeblogEntry
from repro.network.diurnal import DiurnalLoadModel
from repro.network.mobility import COMMUTER_USER, STATIC_USER, MobilityModel
from repro.network.path import NetworkPath, Outage
from repro.streaming.adaptive import AdaptivePlayer, AdaptivePlayerConfig
from repro.streaming.catalog import DASH_LADDER, VideoCatalog
from repro.streaming.progressive import ProgressivePlayer
from repro.streaming.session import VideoSession

from .preparation import (
    group_cleartext_sessions,
    records_from_reconstruction,
)
from .schema import SessionRecord

__all__ = [
    "CorpusConfig",
    "Corpus",
    "generate_corpus",
    "generate_cleartext_corpus",
    "generate_adaptive_corpus",
    "generate_encrypted_corpus",
]

#: Screen/data-plan quality caps users impose on adaptive playback
#: (§4.2: "videos are streamed using limited mobile data plans and on
#: handheld devices that often come with smaller screens which leads
#: users to opt for LD and SD video qualities").
DEFAULT_QUALITY_CAPS: Dict[int, float] = {
    240: 0.46,
    360: 0.26,
    480: 0.21,
    720: 0.05,
    1080: 0.02,
}

_NOISE_HOSTS = (
    "www.facebook.com",
    "cdn.twitter.com",
    "www.google.com",
    "static.news-site.example",
    "api.weatherapp.example",
)


@dataclass
class CorpusConfig:
    """Parameters of a corpus generation run."""

    n_sessions: int
    seed: int = 0
    adaptive_fraction: float = 0.03
    mobility: MobilityModel = field(default_factory=lambda: STATIC_USER)
    quality_caps: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_QUALITY_CAPS)
    )
    encrypted: bool = False
    single_subscriber: bool = False
    session_gap_s: Tuple[float, float] = (60.0, 1800.0)
    noise_entries_per_gap: float = 2.0
    mean_video_duration_s: float = 180.0
    #: Probability that a session's path suffers transient coverage dips
    #: (handovers, tunnels, cell congestion bursts).  These are what
    #: produce *mild* stalls and mid-session quality switches on
    #: otherwise healthy links.
    transient_outage_prob: float = 0.15
    transient_outage_count: Tuple[int, int] = (1, 3)
    transient_outage_duration_s: Tuple[float, float] = (12.0, 45.0)
    transient_outage_factor: Tuple[float, float] = (0.03, 0.20)
    #: Optional time-of-day load model: sessions generated during busy
    #: hours see reduced capacity (and more QoE issues).
    diurnal: Optional[DiurnalLoadModel] = None
    #: Epoch of the first session (seconds; 0 = midnight of day one).
    start_epoch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_sessions < 0:
            raise ValueError("n_sessions must be >= 0")
        if not 0.0 <= self.adaptive_fraction <= 1.0:
            raise ValueError("adaptive_fraction must be in [0, 1]")


@dataclass
class Corpus:
    """A generated corpus: simulation truth + capture views."""

    sessions: List[VideoSession]
    records: List[SessionRecord]
    weblogs: List[WeblogEntry]
    summaries: List[PlaybackSummary]
    segment_records: List[SegmentRecord]

    def adaptive_records(self) -> List[SessionRecord]:
        return [r for r in self.records if r.kind == "adaptive"]

    def records_with_stall_truth(self) -> List[SessionRecord]:
        return [
            r
            for r in self.records
            if r.stall_duration_s is not None and r.total_duration_s
        ]


def _capped_ladder(cap: int):
    return [q for q in DASH_LADDER if q.resolution_p <= cap]


def _noise_entry(
    rng: np.random.Generator, subscriber: str, timestamp: float, encrypted: bool
) -> WeblogEntry:
    host = str(rng.choice(list(_NOISE_HOSTS)))
    size = int(rng.integers(500, 200_000))
    return WeblogEntry(
        subscriber_id=subscriber,
        timestamp_s=timestamp,
        server_name=host,
        server_ip=server_ip_for(host),
        server_port=443 if encrypted else 80,
        object_bytes=size,
        transaction_s=float(rng.uniform(0.02, 1.5)),
        rtt_min_ms=40.0,
        rtt_avg_ms=55.0,
        rtt_max_ms=80.0,
        bdp_bytes=0.0,
        bif_avg_bytes=float(min(size, 14600)),
        bif_max_bytes=float(min(size, 14600)),
        loss_pct=0.0,
        retx_pct=0.0,
        encrypted=encrypted,
        uri=None if encrypted else f"https://{host}/page",
    )


def generate_corpus(config: CorpusConfig) -> Corpus:
    """Simulate sessions, capture them through the proxy, prepare records."""
    rng = np.random.default_rng(config.seed)
    catalog = VideoCatalog(mean_duration_s=config.mean_video_duration_s)
    proxy = WebProxy(rng)
    device = DeviceLogger()
    places = config.mobility.walk(config.n_sessions, rng)

    cap_values = list(config.quality_caps.keys())
    cap_probs = np.array(list(config.quality_caps.values()), dtype=float)
    cap_probs = cap_probs / cap_probs.sum()

    sessions: List[VideoSession] = []
    weblogs: List[WeblogEntry] = []
    summaries: List[PlaybackSummary] = []
    segment_records: List[SegmentRecord] = []

    epoch = config.start_epoch_s
    for i in range(config.n_sessions):
        place = places[i]
        video = catalog.sample(rng)
        outages = []
        # Coverage dips concentrate on mobile regimes (tunnels, cell
        # handovers); static cells rarely see them.
        outage_prob = config.transient_outage_prob * (
            0.4 if place.static else 1.6
        )
        if rng.random() < outage_prob:
            lo, hi = config.transient_outage_count
            for _ in range(int(rng.integers(lo, hi + 1))):
                start = float(rng.uniform(5.0, max(10.0, video.duration_s)))
                duration = float(rng.uniform(*config.transient_outage_duration_s))
                factor = float(rng.uniform(*config.transient_outage_factor))
                outages.append(Outage(start, start + duration, factor))
        profile = place.profile
        if config.diurnal is not None:
            profile = config.diurnal.scale_profile(profile, epoch)
        path = NetworkPath(
            profile,
            video.duration_s * 4.0 + 180.0,
            rng,
            outages=outages,
        )
        if rng.random() < config.adaptive_fraction:
            cap = int(rng.choice(cap_values, p=cap_probs))
            player = AdaptivePlayer(
                AdaptivePlayerConfig(ladder=_capped_ladder(cap))
            )
            session = player.play(video, path, rng, place=place.name)
        else:
            session = ProgressivePlayer().play(video, path, rng, place=place.name)
        sessions.append(session)

        subscriber = "sub-000" if config.single_subscriber else f"sub-{i:06d}"
        entries = proxy.observe(
            session,
            subscriber_id=subscriber,
            start_epoch_s=epoch,
            encrypted=config.encrypted,
        )
        weblogs.extend(entries)
        summaries.append(device.playback_summary(session))
        segment_records.extend(device.segment_records(session, start_epoch_s=epoch))

        gap = float(rng.uniform(*config.session_gap_s))
        n_noise = int(rng.poisson(config.noise_entries_per_gap))
        for _ in range(n_noise):
            weblogs.append(
                _noise_entry(
                    rng,
                    subscriber,
                    epoch + session.total_duration_s + rng.uniform(5.0, max(6.0, gap)),
                    config.encrypted,
                )
            )
        epoch += session.total_duration_s + gap

    weblogs.sort(key=lambda e: e.timestamp_s)

    if config.encrypted:
        reconstructor = SessionReconstructor()
        by_subscriber: Dict[str, List[WeblogEntry]] = {}
        for entry in weblogs:
            by_subscriber.setdefault(entry.subscriber_id, []).append(entry)
        reconstructed = []
        for entries in by_subscriber.values():
            reconstructed.extend(reconstructor.reconstruct(entries))
        records = records_from_reconstruction(
            reconstructed, summaries, segment_records
        )
    else:
        records = group_cleartext_sessions(weblogs)

    return Corpus(
        sessions=sessions,
        records=records,
        weblogs=weblogs,
        summaries=summaries,
        segment_records=segment_records,
    )


def generate_cleartext_corpus(
    n_sessions: int, seed: int = 0, adaptive_fraction: float = 0.03
) -> Corpus:
    """The §3.1-style operator corpus (legacy-heavy, cleartext)."""
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=adaptive_fraction,
            mobility=STATIC_USER,
        )
    )


def generate_adaptive_corpus(
    n_sessions: int, seed: int = 0, transient_outage_prob: float = 0.45
) -> Corpus:
    """All-HAS cleartext corpus for the representation experiments.

    Transient dips are more frequent than in the default corpus so both
    populations of Figure 4 (with/without quality switches) are well
    represented.
    """
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=1.0,
            mobility=STATIC_USER,
            transient_outage_prob=transient_outage_prob,
        )
    )


def generate_encrypted_corpus(
    n_sessions: int = 722,
    seed: int = 42,
    adaptive_fraction: float = 1.0,
) -> Corpus:
    """The §5.2 instrumented-commuter corpus (encrypted, one subscriber).

    The stock Android app always streams adaptively, so the default is
    all-HAS; the commuter mobility makes degraded conditions (and thus
    stalls and low/variable qualities) more frequent than in the
    cleartext corpus, reproducing the §5.3 distribution shift.
    """
    return generate_corpus(
        CorpusConfig(
            n_sessions=n_sessions,
            seed=seed,
            adaptive_fraction=adaptive_fraction,
            mobility=COMMUTER_USER,
            encrypted=True,
            single_subscriber=True,
        )
    )
