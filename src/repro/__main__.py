"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate every table and figure of the paper (``--full`` for the
    benchmark-scale corpora, ``--id tab3_4`` for one experiment).
    ``--jobs N`` fans forest fitting/scoring, CV folds, and large
    feature builds out over N worker processes (results are identical
    for any N; see docs/ARCHITECTURE.md "Parallel execution").
    ``--feature-engine`` selects the columnar batch engine (default)
    or the per-record reference path; ``--corpus-engine`` does the
    same for corpus generation (see docs/ARCHITECTURE.md "Corpus
    engine"); ``--feature-cache DIR`` enables
    the on-disk feature-matrix cache (see docs/ARCHITECTURE.md
    "Feature engine").  ``--metrics-out PATH``
    drops a JSON telemetry snapshot (metrics + span trees) next to the
    results; ``--metrics-port N`` additionally serves the live
    Prometheus exposition over HTTP for the duration of the run;
    ``--log-level DEBUG`` turns on structured key=value logging.
``serve-replay``
    Run the sharded online inference service
    (:class:`repro.serving.QoEService`) against a synthetic encrypted
    trace, replayed at ``--speedup`` (0 = as fast as possible).  Loads
    a model from ``--model`` (a ``repro.persistence`` file) or trains
    a fresh one on simulated cleartext corpora.  ``--check-serial``
    re-runs the same trace through the serial ``RealTimeMonitor`` and
    fails unless the diagnosis multisets match exactly — the serving
    determinism gate CI runs.  ``--faults SPEC`` injects a
    deterministic chaos plan (:mod:`repro.faults`) into the replay:
    record corruption/drops/duplicates/reordering, clock skew, shard
    kills and reload failures; with ``--check-serial`` the determinism
    gate then compares only the subscribers the plan never touched.
    ``--slo SPEC`` (repeatable; ``--slo default`` for the built-in set)
    evaluates latency/success objectives over the replay and prints
    their burn rates; ``--postmortem-dir DIR`` arms the flight
    recorder so shard deaths, open circuits and drain timeouts dump
    JSON postmortems there.  ``--metrics-port`` additionally serves
    the live ``/health`` JSON next to ``/metrics``.
    ``--shard-backend socket`` runs the shards over the socket
    transport, placed per ``--placement`` (``local:N``, ``inproc:N``,
    or ``0=host:port,...`` for standalone workers).
``netshard-worker``
    Run one standalone socket shard worker: ``python -m repro
    netshard-worker --listen 0.0.0.0:7000 --auth-key-file shard.key``.
    Every connection must pass an HMAC challenge over the shared key
    before a single frame is read (frames are pickles — an
    unauthenticated reachable port would hand out remote code
    execution), so a non-loopback ``--listen`` requires a key unless
    ``--allow-unauthenticated`` explicitly accepts the risk.  The
    connecting service ships the model and shard config in its
    ``hello``, so the worker needs no local model file; it serves one
    parent at a time, survives reconnects with its shard state
    intact, and exits 0 after a clean drain.
``list``
    List the experiment ids.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from contextlib import contextmanager


@contextmanager
def _maybe_metrics_server(port, log, health=None):
    """Serve /metrics (and /health, if given) for the command, if asked to."""
    if port is None:
        yield None
        return
    from repro.obs import start_metrics_server

    server = start_metrics_server(port=port, health=health)
    print(f"serving metrics on {server.url}", file=sys.stderr)
    log.info("metrics_port_open", url=server.url)
    try:
        yield server
    finally:
        server.close()


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (
        EXPERIMENT_IDS,
        FULL,
        SMALL,
        Workspace,
        run_all,
        run_experiment,
    )
    from repro.obs import (
        configure_logging,
        get_logger,
        get_tracer,
        trace,
        write_snapshot,
    )

    configure_logging(args.log_level)
    log = get_logger("cli")

    config = FULL if args.full else SMALL
    if args.jobs != config.n_jobs:
        config = dataclasses.replace(config, n_jobs=args.jobs)
    if args.feature_cache:
        config = dataclasses.replace(
            config, feature_cache_dir=args.feature_cache
        )
    if args.feature_engine:
        from repro.core.featurex import set_default_engine

        set_default_engine(args.feature_engine)
    if args.corpus_engine:
        config = dataclasses.replace(config, corpus_engine=args.corpus_engine)
    with _maybe_metrics_server(args.metrics_port, log):
        with trace("repro.experiments") as root:
            if args.id:
                workspace = Workspace(config)
                result = run_experiment(args.id, workspace)
                print(result)
                root.add("experiments", 1)
            else:
                print(run_all(config))
                root.add("experiments", len(EXPERIMENT_IDS))

    # The root span's timing tree replaces the old bare wall-clock line.
    print(f"\n{get_tracer().render()}", file=sys.stderr)

    if args.metrics_out:
        snapshot = write_snapshot(args.metrics_out)
        log.info(
            "metrics_written",
            path=args.metrics_out,
            families=len(snapshot["metrics"]),
        )
    return 0


def _train_or_load_framework(args, log):
    """A fitted QoEFramework from --model, or trained on simulated data."""
    if args.model:
        from repro.persistence import load_framework

        framework = load_framework(args.model)
        log.info("model_loaded", path=args.model)
        return framework

    from repro import QoEFramework
    from repro.datasets.generate import (
        generate_adaptive_corpus,
        generate_cleartext_corpus,
    )

    log.info("training_model", sessions=args.train_sessions)
    cleartext = generate_cleartext_corpus(args.train_sessions, seed=args.seed)
    adaptive = generate_adaptive_corpus(
        max(40, args.train_sessions // 2), seed=args.seed + 1
    )
    return QoEFramework(random_state=args.seed, n_estimators=20).fit(
        cleartext.records_with_stall_truth(),
        [r for r in adaptive.records if r.resolutions is not None],
    )


def _diagnosis_multiset(diagnoses, exclude_subscribers=frozenset()):
    """Comparable multiset of diagnoses, optionally minus some subscribers.

    Session ids are ``{subscriber}/online-{n}``, so the subscriber is
    recoverable here — used to restrict the determinism check to
    fault-untouched subscribers under an active chaos plan.
    """
    return sorted(
        (
            d.session_id,
            d.stall_class,
            d.representation_class,
            d.has_quality_switches,
        )
        for d in diagnoses
        if d.session_id.rsplit("/online-", 1)[0] not in exclude_subscribers
    )


def _provisional_multiset(provisional, exclude_subscribers=frozenset()):
    """Comparable multiset of provisional (early) diagnoses."""
    return sorted(
        (
            p.session_id,
            p.n_chunks,
            p.stall_class,
            p.stall_confidence,
            p.representation_class,
            p.representation_confidence,
        )
        for p in provisional
        if p.subscriber_id not in exclude_subscribers
    )


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    from repro.faults import FaultInjector, FaultPlan
    from repro.obs import configure_logging, get_logger, write_snapshot
    from repro.serving import QoEService, TraceReplayer, synthetic_trace

    configure_logging(args.log_level)
    log = get_logger("cli")

    plan = FaultPlan.parse(args.faults)
    injector = None if plan.is_noop else FaultInjector(plan)
    if injector is not None:
        log.info("fault_plan_active", plan=plan.describe())

    framework = _train_or_load_framework(args, log)
    entries = synthetic_trace(
        args.sessions, seed=args.trace_seed, subscribers=args.subscribers
    )
    log.info("trace_ready", sessions=args.sessions, entries=len(entries))

    slo_specs = None
    if args.slo and args.no_telemetry:
        print(
            "error: --slo needs pipeline telemetry; drop --no-telemetry",
            file=sys.stderr,
        )
        return 2
    if args.slo:
        from repro.obs import DEFAULT_SLOS

        slo_specs = []
        for spec in args.slo:
            if spec == "default":
                slo_specs.extend(DEFAULT_SLOS)
            else:
                slo_specs.append(spec)

    service = QoEService(
        framework,
        n_shards=args.shards,
        shard_backend=args.shard_backend,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        max_batch=args.batch_max,
        max_delay_s=args.batch_delay,
        faults=injector,
        telemetry=not args.no_telemetry,
        slos=slo_specs,
        postmortem_dir=args.postmortem_dir,
        early_after_chunks=args.early_after_chunks,
        early_confidence=args.early_confidence,
        placement=args.placement,
        socket_opts=(
            {"auth_key": _read_auth_key(args.auth_key_file)}
            if args.shard_backend == "socket"
            and (args.auth_key_file or _read_auth_key(None))
            else None
        ),
    )
    with _maybe_metrics_server(args.metrics_port, log, health=service.health):
        service.start()
        stats = TraceReplayer(
            service, speedup=args.speedup, faults=injector
        ).replay(entries)
        diagnoses = service.drain()

    health = service.health()
    print(
        f"replayed {stats.entries} entries ({stats.trace_span_s:.0f}s of "
        f"trace) in {stats.wall_s:.2f}s through {args.shards} "
        f"{args.shard_backend} shard(s): "
        f"{len(diagnoses)} diagnoses, {len(service.alarms)} alarms, "
        f"{stats.shed} shed, model v{health['model_version']}"
    )
    if args.early_after_chunks is not None:
        report = service.early_report()
        print(
            f"early: {len(service.provisional)} provisional diagnoses "
            f"after {args.early_after_chunks} chunk(s) "
            f"(confidence >= {args.early_confidence:g}); "
            + (report.describe() if report is not None else "no report")
        )
    if injector is not None:
        summary = injector.summary()
        print(
            f"chaos: {summary['injected']} injections "
            f"({summary['by_kind']}), {injector.kills_fired} kill(s), "
            f"{health['restarts']} shard restart(s), "
            f"{health['dead_letter']['quarantined']} dead-lettered, "
            f"{health['rejected']} rejected, "
            f"circuits open: {service.supervisor.open_circuits or 'none'}, "
            f"degraded={health['degraded']}"
        )

    if "slo" in health:
        for objective in health["slo"]["objectives"]:
            status = "ok" if objective["ok"] else "BREACHED"
            value = objective["value"]
            shown = "n/a" if value is None else f"{value:.6g}"
            print(
                f"slo {objective['name']} ({objective['spec']}): {status}, "
                f"value={shown}, burn_rate={objective['burn_rate']:.4g}, "
                f"breaches={objective['breaches']}/{objective['windows']}"
            )
    for path in service.recorder.postmortems:
        print(f"postmortem written: {path}")

    if args.metrics_out:
        snapshot = write_snapshot(args.metrics_out)
        log.info(
            "metrics_written",
            path=args.metrics_out,
            families=len(snapshot["metrics"]),
        )

    if args.check_serial:
        from repro import RealTimeMonitor

        # The serial reference always consumes the CLEAN trace.  Under
        # an active chaos plan the comparison is restricted to the
        # subscribers the plan never touched — for those the service
        # guarantees bit-identical diagnoses; fault-affected
        # subscribers legitimately diverge (quarantined records, lost
        # in-flight entries).
        affected = (
            injector.affected_subscribers if injector is not None else frozenset()
        )
        early = None
        if args.early_after_chunks is not None:
            from repro.online import EarlyPredictor

            early = EarlyPredictor(
                framework,
                after_chunks=args.early_after_chunks,
                min_confidence=args.early_confidence,
            )
        monitor = RealTimeMonitor(framework, early=early)
        monitor.feed_many(entries)
        monitor.drain()
        serial = _diagnosis_multiset(monitor.diagnoses, affected)
        sharded = _diagnosis_multiset(diagnoses, affected)
        scope = (
            "all subscribers"
            if not affected
            else f"{args.subscribers - len(affected)}/{args.subscribers} "
            "fault-untouched subscribers"
        )
        if serial != sharded:
            print(
                f"serving determinism check FAILED ({scope}): serial "
                f"produced {len(serial)} diagnoses, service produced "
                f"{len(sharded)} (or contents differ)",
                file=sys.stderr,
            )
            return 1
        print(
            f"serving determinism check ok ({scope}): {len(serial)} "
            "diagnoses, sharded == serial"
        )
        if early is not None:
            serial_prov = _provisional_multiset(monitor.provisional, affected)
            sharded_prov = _provisional_multiset(service.provisional, affected)
            if serial_prov != sharded_prov:
                print(
                    f"early determinism check FAILED ({scope}): serial "
                    f"produced {len(serial_prov)} provisional diagnoses, "
                    f"service produced {len(sharded_prov)} (or contents "
                    "differ)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"early determinism check ok ({scope}): "
                f"{len(serial_prov)} provisional diagnoses, "
                "sharded == serial"
            )
    return 0


def _read_auth_key(key_file) -> bytes:
    """Auth key from ``--auth-key-file`` or ``REPRO_NETSHARD_AUTHKEY``."""
    import os

    if key_file is not None:
        with open(key_file, "rb") as fh:
            return fh.read().strip()
    env = os.environ.get("REPRO_NETSHARD_AUTHKEY", "")
    return env.encode("utf-8")


def _is_loopback_host(host: str) -> bool:
    return host in ("localhost", "::1") or host.startswith("127.")


def _cmd_netshard_worker(args: argparse.Namespace) -> int:
    from repro.obs import configure_logging, get_logger
    from repro.serving import run_worker

    configure_logging(args.log_level)
    log = get_logger("cli")

    host, colon, port = args.listen.rpartition(":")
    if not colon or not host:
        print(
            f"error: --listen wants HOST:PORT, got {args.listen!r}",
            file=sys.stderr,
        )
        return 2
    try:
        port_no = int(port)
    except ValueError:
        print(f"error: bad port in --listen {args.listen!r}", file=sys.stderr)
        return 2

    auth_key = _read_auth_key(args.auth_key_file)
    if not auth_key and not _is_loopback_host(host):
        # Frames are pickles: an unauthenticated reachable worker port
        # is arbitrary code execution for anyone who can connect.
        if not args.allow_unauthenticated:
            print(
                "error: refusing to listen on a non-loopback address "
                "without an auth key (frames are pickles; an open port "
                "means remote code execution). Pass --auth-key-file / "
                "set REPRO_NETSHARD_AUTHKEY, or accept the risk on a "
                "trusted network with --allow-unauthenticated.",
                file=sys.stderr,
            )
            return 2
        log.warning(
            "netshard_worker_unauthenticated",
            host=host,
            detail="no auth key; any peer that can reach this port "
            "gets code execution — trusted networks only",
        )

    log.info(
        "netshard_worker_starting",
        host=host,
        port=port_no,
        authenticated=bool(auth_key),
    )
    kwargs = {}
    if args.max_frame_bytes is not None:
        kwargs["max_frame_bytes"] = args.max_frame_bytes
    return run_worker(
        host,
        port_no,
        config=None,
        on_port=lambda bound: print(
            f"netshard worker listening on {host}:{bound}", file=sys.stderr
        ),
        auth_key=auth_key,
        **kwargs,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_IDS

    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id)
    return 0


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="structured-logging threshold (default: INFO)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a JSON telemetry snapshot (metrics + spans) to PATH",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live Prometheus text exposition on http://127.0.0.1:PORT"
            "/metrics for the duration of the run (0 = ephemeral port)"
        ),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Measuring Video QoE from Encrypted Traffic' "
            "(IMC 2016)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--full", action="store_true", help="benchmark-scale corpora"
    )
    experiments.add_argument(
        "--id", default=None, help="run a single experiment (see 'list')"
    )
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for forest fitting/scoring, CV folds, and "
            "feature builds (1 serial, -1 all cores; results identical "
            "for any value)"
        ),
    )
    experiments.add_argument(
        "--feature-engine",
        default=None,
        choices=["columnar", "per-record"],
        help=(
            "feature-matrix build engine (default: columnar; per-record "
            "is the bit-identical reference path)"
        ),
    )
    experiments.add_argument(
        "--corpus-engine",
        default=None,
        choices=["vectorized", "per-session"],
        help=(
            "corpus generation engine (default: vectorized; per-session "
            "is the bit-identical reference path)"
        ),
    )
    experiments.add_argument(
        "--feature-cache",
        default=None,
        metavar="DIR",
        help=(
            "on-disk feature-matrix cache directory; repeated runs on an "
            "unchanged corpus skip the feature builds entirely"
        ),
    )
    _add_telemetry_flags(experiments)
    experiments.set_defaults(func=_cmd_experiments)

    serve = subparsers.add_parser(
        "serve-replay",
        help="replay a synthetic trace through the sharded QoE service",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=100,
        metavar="N",
        help="video sessions in the synthetic trace (default: 100)",
    )
    serve.add_argument(
        "--subscribers",
        type=int,
        default=16,
        metavar="N",
        help="fold the trace onto N subscribers (default: 16)",
    )
    serve.add_argument(
        "--trace-seed", type=int, default=7, help="trace generation seed"
    )
    serve.add_argument(
        "--shards", type=int, default=4, metavar="N", help="shard workers"
    )
    serve.add_argument(
        "--shard-backend",
        choices=("thread", "process", "socket"),
        default="thread",
        help=(
            "run shards as in-process threads, as one process per shard "
            "(true multi-core), or over the socket transport placed per "
            "--placement (default: thread)"
        ),
    )
    serve.add_argument(
        "--placement",
        default=None,
        metavar="SPEC",
        help=(
            "shard placement for --shard-backend socket: 'local:N' "
            "(spawned loopback processes, the default), 'inproc:N' "
            "(in-process threads over loopback), or "
            "'0=host:port,1=host:port,...' for standalone "
            "netshard-worker processes"
        ),
    )
    serve.add_argument(
        "--auth-key-file",
        default=None,
        metavar="FILE",
        help=(
            "shared HMAC secret for standalone-worker placements — must "
            "match the workers' --auth-key-file (REPRO_NETSHARD_AUTHKEY "
            "is the env fallback); spawned/in-process placements "
            "generate their own keys automatically"
        ),
    )
    serve.add_argument(
        "--speedup",
        type=float,
        default=0.0,
        metavar="X",
        help=(
            "trace seconds per wall-clock second; 0 replays as fast as "
            "backpressure allows (default: 0)"
        ),
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="per-shard ingest queue bound (default: 1024)",
    )
    serve.add_argument(
        "--policy",
        default="block",
        choices=["block", "drop_oldest", "shed_newest"],
        help="backpressure policy when a shard queue fills (default: block)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=32,
        metavar="N",
        help="micro-batch size for vectorized diagnosis (default: 32)",
    )
    serve.add_argument(
        "--batch-delay",
        type=float,
        default=0.25,
        metavar="S",
        help="max seconds a closed session waits in a partial batch",
    )
    serve.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help=(
            "load a saved framework (repro.persistence JSON) instead of "
            "training one on simulated corpora"
        ),
    )
    serve.add_argument(
        "--train-sessions",
        type=int,
        default=200,
        metavar="N",
        help="cleartext training sessions when no --model given",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="training seed (no --model)"
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject a deterministic chaos plan: compact form "
            "'corrupt=0.02,kill_shard=1@100,reload_fail=2,seed=7', "
            "inline JSON, or a path to a JSON file (see repro.faults)"
        ),
    )
    serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "declare a latency/success objective evaluated over the "
            "replay: 'p99:e2e<=250ms@60s', 'p95:diagnose<=50ms@30s' or "
            "'success>=99.9%%@60s'; repeatable; the literal 'default' "
            "expands to the built-in objective set"
        ),
    )
    serve.add_argument(
        "--postmortem-dir",
        default=None,
        metavar="DIR",
        help=(
            "arm the flight recorder: on a shard death, open circuit or "
            "drain timeout, dump a JSON postmortem (recent events, "
            "per-stage latencies, SLO state) into DIR"
        ),
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable per-record pipeline telemetry (trace contexts, "
            "stage histograms, exemplars); incompatible with --slo"
        ),
    )
    serve.add_argument(
        "--early-after-chunks",
        type=int,
        default=None,
        metavar="K",
        help=(
            "emit provisional diagnoses on open sessions once they "
            "reach K media chunks (early prediction; see repro.online)"
        ),
    )
    serve.add_argument(
        "--early-confidence",
        type=float,
        default=0.0,
        metavar="T",
        help=(
            "only emit provisional diagnoses whose combined confidence "
            "(tree-vote agreement x session-age ramp) is >= T"
        ),
    )
    serve.add_argument(
        "--check-serial",
        action="store_true",
        help=(
            "also run the serial RealTimeMonitor on the same trace and "
            "fail unless the diagnosis multisets match (with "
            "--early-after-chunks, the provisional multisets too)"
        ),
    )
    _add_telemetry_flags(serve)
    serve.set_defaults(func=_cmd_serve_replay)

    worker = subparsers.add_parser(
        "netshard-worker",
        help="run one standalone socket shard worker (see --placement)",
    )
    worker.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="bind address; port 0 picks an ephemeral port",
    )
    worker.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        metavar="N",
        help="reject frames larger than N bytes (default: 64 MiB)",
    )
    worker.add_argument(
        "--auth-key-file",
        default=None,
        metavar="FILE",
        help=(
            "file holding the shared HMAC secret every connection must "
            "prove before any frame is read (REPRO_NETSHARD_AUTHKEY is "
            "the env fallback); required for non-loopback --listen"
        ),
    )
    worker.add_argument(
        "--allow-unauthenticated",
        action="store_true",
        help=(
            "listen on a non-loopback address without an auth key "
            "(DANGEROUS: frames are pickles, so any peer that can reach "
            "the port gets code execution; trusted networks only)"
        ),
    )
    worker.add_argument(
        "--log-level",
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="structured-logging threshold (default: INFO)",
    )
    worker.set_defaults(func=_cmd_netshard_worker)

    listing = subparsers.add_parser("list", help="list experiment ids")
    listing.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
