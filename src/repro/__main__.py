"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate every table and figure of the paper (``--full`` for the
    benchmark-scale corpora, ``--id tab3_4`` for one experiment).
    ``--jobs N`` fans forest fitting/scoring and CV folds out over N
    worker processes (results are identical for any N; see
    docs/ARCHITECTURE.md "Parallel execution").  ``--metrics-out PATH``
    drops a JSON telemetry snapshot (metrics + span trees) next to the
    results; ``--log-level DEBUG`` turns on structured key=value
    logging.
``list``
    List the experiment ids.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (
        EXPERIMENT_IDS,
        FULL,
        SMALL,
        Workspace,
        run_all,
        run_experiment,
    )
    from repro.obs import (
        configure_logging,
        get_logger,
        get_tracer,
        trace,
        write_snapshot,
    )

    configure_logging(args.log_level)
    log = get_logger("cli")

    config = FULL if args.full else SMALL
    if args.jobs != config.n_jobs:
        config = dataclasses.replace(config, n_jobs=args.jobs)
    with trace("repro.experiments") as root:
        if args.id:
            workspace = Workspace(config)
            result = run_experiment(args.id, workspace)
            print(result)
            root.add("experiments", 1)
        else:
            print(run_all(config))
            root.add("experiments", len(EXPERIMENT_IDS))

    # The root span's timing tree replaces the old bare wall-clock line.
    print(f"\n{get_tracer().render()}", file=sys.stderr)

    if args.metrics_out:
        snapshot = write_snapshot(args.metrics_out)
        log.info(
            "metrics_written",
            path=args.metrics_out,
            families=len(snapshot["metrics"]),
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_IDS

    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Measuring Video QoE from Encrypted Traffic' "
            "(IMC 2016)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--full", action="store_true", help="benchmark-scale corpora"
    )
    experiments.add_argument(
        "--id", default=None, help="run a single experiment (see 'list')"
    )
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for forest fitting/scoring and CV folds "
            "(1 serial, -1 all cores; results identical for any value)"
        ),
    )
    experiments.add_argument(
        "--log-level",
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="structured-logging threshold (default: INFO)",
    )
    experiments.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a JSON telemetry snapshot (metrics + spans) to PATH",
    )
    experiments.set_defaults(func=_cmd_experiments)

    listing = subparsers.add_parser("list", help="list experiment ids")
    listing.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
