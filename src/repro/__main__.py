"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate every table and figure of the paper (``--full`` for the
    benchmark-scale corpora, ``--id tab3_4`` for one experiment).
``list``
    List the experiment ids.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import FULL, SMALL, Workspace, run_all, run_experiment

    config = FULL if args.full else SMALL
    started = time.time()
    if args.id:
        workspace = Workspace(config)
        result = run_experiment(args.id, workspace)
        print(result)
    else:
        print(run_all(config))
    print(f"\n[{time.time() - started:.0f}s]", file=sys.stderr)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_IDS

    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Measuring Video QoE from Encrypted Traffic' "
            "(IMC 2016)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--full", action="store_true", help="benchmark-scale corpora"
    )
    experiments.add_argument(
        "--id", default=None, help="run a single experiment (see 'list')"
    )
    experiments.set_defaults(func=_cmd_experiments)

    listing = subparsers.add_parser("list", help="list experiment ids")
    listing.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
