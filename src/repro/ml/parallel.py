"""Shared worker-pool helper for the ML stack.

Bagged trees and CV folds are embarrassingly parallel: every task is a
pure function of its payload, and results only need to be combined in
submission order.  This module provides that one primitive —
:func:`run_tasks`, an order-preserving map — with three execution
modes:

* ``n_jobs=1`` (the default): a plain serial loop, zero overhead.
* ``n_jobs>1``: a :class:`~concurrent.futures.ProcessPoolExecutor`
  (numpy releases the GIL rarely enough that threads do not help tree
  growing).  Task functions must be module-level so they pickle.
* thread fallback: if the platform cannot create a process pool
  (sandboxes without POSIX semaphores, restricted spawn), the helper
  degrades to a :class:`~concurrent.futures.ThreadPoolExecutor` rather
  than failing — results are identical either way, only the speedup is
  lost.

Determinism is the caller's contract: payloads must carry their own
RNG state (see ``np.random.SeedSequence.spawn`` in
:mod:`repro.ml.forest`) and the caller must combine results in the
returned order, so ``n_jobs`` never changes a computed value.

Pool size and per-task latency are instrumented through
:mod:`repro.obs` (``repro_ml_pool_workers``,
``repro_ml_pool_task_seconds``, ``repro_ml_pool_tasks_total``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs import get_registry

__all__ = ["effective_n_jobs", "block_ranges", "run_tasks"]

_REG = get_registry()
_POOL_WORKERS = _REG.gauge(
    "repro_ml_pool_workers",
    "Workers in the currently active ML worker pool (0 when idle).",
)
_POOL_TASKS = _REG.counter(
    "repro_ml_pool_tasks_total",
    "Tasks executed by the ML worker-pool helper.",
    labelnames=("task", "mode"),
)
_TASK_SECONDS = _REG.histogram(
    "repro_ml_pool_task_seconds",
    "Wall-clock duration of individual ML pool tasks.",
    labelnames=("task",),
)


def effective_n_jobs(n_jobs: Optional[int]) -> int:
    """Resolve an ``n_jobs`` parameter to a concrete worker count.

    ``None`` means 1 (serial); negative values count back from the CPU
    count joblib-style (``-1`` = all cores, ``-2`` = all but one).
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must not be 0 (use None or 1 for serial)")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def block_ranges(n_items: int, block_size: int) -> List[Tuple[int, int]]:
    """Partition ``range(n_items)`` into ``[start, stop)`` blocks.

    The block structure is a *determinism anchor*: callers that sum
    floating-point partials must always combine per-block (in block
    order) so serial and parallel runs add in the same order.  The
    partition therefore depends only on ``n_items`` and ``block_size``,
    never on the worker count.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    return [
        (start, min(start + block_size, n_items))
        for start in range(0, n_items, block_size)
    ]


def _timed_call(fn: Callable, payload) -> Tuple[float, object]:
    """Run one task and return (elapsed_seconds, result).

    Executes inside the worker so the recorded latency excludes queue
    wait and result pickling.
    """
    start = time.perf_counter()
    result = fn(payload)
    return time.perf_counter() - start, result


def _make_pool(workers: int):
    """Process pool, or thread pool where processes are unavailable."""
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
        # Creation is lazy on some platforms; force the failure early so
        # the fallback engages here rather than mid-map.
        pool.submit(int, 0).result()
        return pool, "process"
    except (OSError, ValueError, RuntimeError, NotImplementedError):
        return ThreadPoolExecutor(max_workers=workers), "thread"


def run_tasks(
    fn: Callable,
    payloads: Sequence,
    n_jobs: Optional[int] = 1,
    task: str = "task",
) -> List:
    """Map ``fn`` over ``payloads``; results in submission order.

    ``fn`` must be a module-level function (it is pickled for process
    workers).  Exceptions raised by a task propagate to the caller.
    ``task`` labels the observability series.
    """
    payloads = list(payloads)
    jobs = min(effective_n_jobs(n_jobs), len(payloads))
    if jobs <= 1:
        results = []
        for payload in payloads:
            elapsed, result = _timed_call(fn, payload)
            _TASK_SECONDS.labels(task=task).observe(elapsed)
            _POOL_TASKS.labels(task=task, mode="serial").inc()
            results.append(result)
        return results

    pool, mode = _make_pool(jobs)
    _POOL_WORKERS.set(jobs)
    try:
        futures = [pool.submit(_timed_call, fn, p) for p in payloads]
        results = []
        for future in futures:
            elapsed, result = future.result()
            _TASK_SECONDS.labels(task=task).observe(elapsed)
            _POOL_TASKS.labels(task=task, mode=mode).inc()
            results.append(result)
        return results
    finally:
        pool.shutdown(wait=True)
        _POOL_WORKERS.set(0)
