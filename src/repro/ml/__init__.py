"""From-scratch ML substrate replacing the paper's Weka toolchain.

Provides CART decision trees, Random Forests, information-gain ranking,
CFS subset selection with best-first search, stratified k-fold CV,
class balancing and paper-format classification reports.
"""

from .balance import balanced_indices, oversample, undersample
from .crossval import cross_validate, stratified_kfold, train_test_split
from .forest import RandomForestClassifier
from .information import (
    conditional_entropy,
    entropy,
    information_gain,
    symmetrical_uncertainty,
)
from .metrics import (
    ClassificationReport,
    ClassReport,
    accuracy,
    classification_report,
    confusion_matrix,
)
from .parallel import block_ranges, effective_n_jobs, run_tasks
from .selection import CfsSubsetSelector, InfoGainRanker, SelectionResult
from .tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "InfoGainRanker",
    "CfsSubsetSelector",
    "SelectionResult",
    "entropy",
    "conditional_entropy",
    "information_gain",
    "symmetrical_uncertainty",
    "accuracy",
    "confusion_matrix",
    "classification_report",
    "ClassificationReport",
    "ClassReport",
    "stratified_kfold",
    "train_test_split",
    "cross_validate",
    "balanced_indices",
    "undersample",
    "oversample",
    "effective_n_jobs",
    "block_ranges",
    "run_tasks",
]
