"""Feature selection: CFS subset evaluation with best-first search, and
information-gain ranking.

These mirror the two Weka components the paper uses:

* ``CfsSubsetEval`` + ``BestFirst`` selects the feature subsets for the
  stall model (70 -> 4 features, §4.1) and the average-representation
  model (210 -> 15 features, §4.2).
* ``InfoGainAttributeEval`` produces the per-feature gains reported in
  Tables 2 and 5.

CFS (Hall, 1999) scores a subset S of k features by the *merit*

    merit(S) = k * mean(r_cf) / sqrt(k + k (k - 1) * mean(r_ff))

where ``r_cf`` is the mean feature-class correlation and ``r_ff`` the
mean feature-feature inter-correlation, both measured as symmetrical
uncertainty over supervised-discretised attributes.  Good subsets are
highly correlated with the class yet mutually non-redundant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .information import (
    discretize,
    information_gain,
    mdl_discretize,
    symmetrical_uncertainty,
)

__all__ = ["InfoGainRanker", "CfsSubsetSelector", "SelectionResult"]


def _discretize_matrix(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Supervised-discretised integer copy of a continuous feature matrix."""
    X = np.asarray(X, dtype=float)
    out = np.empty(X.shape, dtype=np.int64)
    for j in range(X.shape[1]):
        cuts = mdl_discretize(X[:, j], y)
        out[:, j] = discretize(X[:, j], cuts)
    return out


@dataclass
class SelectionResult:
    """Outcome of a feature-selection run.

    Attributes
    ----------
    selected:
        Indices of the chosen features, in ranking order where the
        selector defines one.
    scores:
        Per-feature score aligned with ``selected`` (info gain for the
        ranker, merit contribution is not defined per-feature for CFS so
        the CFS selector reports each feature's individual info gain).
    names:
        Feature names aligned with ``selected`` when names were given.
    merit:
        Final subset merit (CFS only; ``None`` for the ranker).
    """

    selected: List[int]
    scores: List[float]
    names: Optional[List[str]] = None
    merit: Optional[float] = None

    def top(self, n: int) -> "SelectionResult":
        """Restrict to the ``n`` best entries."""
        return SelectionResult(
            selected=self.selected[:n],
            scores=self.scores[:n],
            names=self.names[:n] if self.names is not None else None,
            merit=self.merit,
        )


class InfoGainRanker:
    """Rank features by information gain w.r.t. the class.

    Numeric features are discretised with the Fayyad-Irani MDL criterion
    first, matching Weka's ``InfoGainAttributeEval`` behaviour.
    """

    def rank(
        self,
        X: np.ndarray,
        y: np.ndarray,
        names: Optional[Sequence[str]] = None,
    ) -> SelectionResult:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X/y shape mismatch")
        Xd = _discretize_matrix(X, y)
        gains = np.array(
            [information_gain(y, Xd[:, j]) for j in range(X.shape[1])]
        )
        order = np.argsort(-gains, kind="mergesort")
        return SelectionResult(
            selected=[int(j) for j in order],
            scores=[float(gains[j]) for j in order],
            names=[names[j] for j in order] if names is not None else None,
        )


class CfsSubsetSelector:
    """Correlation-based Feature Subset Selection with best-first search.

    Parameters
    ----------
    max_stale:
        Best-first gives up after this many consecutive expansions that
        fail to improve the best merit (Weka's ``searchTermination``,
        default 5).
    max_subset_size:
        Optional hard cap on the subset size (useful to keep the search
        cheap on the 210-feature set).
    """

    def __init__(self, max_stale: int = 5, max_subset_size: Optional[int] = None):
        if max_stale < 1:
            raise ValueError("max_stale must be >= 1")
        self.max_stale = max_stale
        self.max_subset_size = max_subset_size

    def select(
        self,
        X: np.ndarray,
        y: np.ndarray,
        names: Optional[Sequence[str]] = None,
    ) -> SelectionResult:
        """Run the search and return the best subset found."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X/y shape mismatch")
        n_features = X.shape[1]
        Xd = _discretize_matrix(X, y)

        # Feature-class correlations, computed once.
        r_cf = np.array(
            [symmetrical_uncertainty(Xd[:, j], y) for j in range(n_features)]
        )
        # Feature-feature correlations, computed lazily and cached.
        ff_cache: Dict[Tuple[int, int], float] = {}

        def r_ff(i: int, j: int) -> float:
            key = (i, j) if i < j else (j, i)
            if key not in ff_cache:
                ff_cache[key] = symmetrical_uncertainty(Xd[:, key[0]], Xd[:, key[1]])
            return ff_cache[key]

        def merit(subset: FrozenSet[int]) -> float:
            k = len(subset)
            if k == 0:
                return 0.0
            sum_cf = sum(r_cf[j] for j in subset)
            if k == 1:
                return float(sum_cf)
            members = sorted(subset)
            sum_ff = 0.0
            for a in range(k):
                for b in range(a + 1, k):
                    sum_ff += r_ff(members[a], members[b])
            denom = np.sqrt(k + 2.0 * sum_ff)
            return float(sum_cf / denom) if denom > 0 else 0.0

        # Best-first forward search.
        start: FrozenSet[int] = frozenset()
        best_subset = start
        best_merit = merit(start)
        # heap of (-merit, tiebreak, subset); tiebreak keeps heap total-ordered
        counter = 0
        frontier: List[Tuple[float, int, FrozenSet[int]]] = [(-best_merit, counter, start)]
        visited = {start}
        stale = 0

        while frontier and stale < self.max_stale:
            _, __, subset = heapq.heappop(frontier)
            improved = False
            if self.max_subset_size is not None and len(subset) >= self.max_subset_size:
                candidates: List[int] = []
            else:
                candidates = [j for j in range(n_features) if j not in subset]
            for j in candidates:
                child = subset | {j}
                if child in visited:
                    continue
                visited.add(child)
                m = merit(child)
                counter += 1
                heapq.heappush(frontier, (-m, counter, child))
                if m > best_merit + 1e-12:
                    best_merit = m
                    best_subset = child
                    improved = True
            stale = 0 if improved else stale + 1

        # Order the subset by feature-class correlation and report each
        # member's individual information gain (what Tables 2/5 show).
        selected = sorted(best_subset, key=lambda j: -r_cf[j])
        scores = [information_gain(y, Xd[:, j]) for j in selected]
        return SelectionResult(
            selected=[int(j) for j in selected],
            scores=[float(s) for s in scores],
            names=[names[j] for j in selected] if names is not None else None,
            merit=float(best_merit),
        )
