"""Information-theoretic utilities used across the ML substrate.

The paper relies on two Weka components that are both grounded in
information theory:

* ``InfoGainAttributeEval`` — ranks features by information gain with
  respect to the class (used for Tables 2 and 5).
* ``CfsSubsetEval`` — scores feature *subsets* by the ratio of
  feature-class correlation to feature-feature redundancy, where the
  correlations are symmetrical uncertainties.

Both operate on discretised attributes, so this module also provides the
discretisation helpers (equal-frequency binning and the Fayyad-Irani MDL
split criterion used by Weka's default supervised discretiser).

All functions accept plain numpy arrays.  Class labels may be any
hashable values; continuous features are ``float`` arrays.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = [
    "entropy",
    "entropy_from_counts",
    "conditional_entropy",
    "information_gain",
    "symmetrical_uncertainty",
    "equal_frequency_bins",
    "discretize",
    "mdl_discretize",
]


def entropy_from_counts(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a distribution given by raw counts.

    Zero-count cells contribute nothing; an all-zero vector has zero
    entropy by convention.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a label vector."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    return entropy_from_counts(counts)


def _contingency(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Contingency table of two discrete vectors."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    _, xi = np.unique(x, return_inverse=True)
    _, yi = np.unique(y, return_inverse=True)
    n_x = int(xi.max()) + 1 if xi.size else 0
    n_y = int(yi.max()) + 1 if yi.size else 0
    table = np.zeros((n_x, n_y), dtype=float)
    np.add.at(table, (xi, yi), 1.0)
    return table


def conditional_entropy(y: np.ndarray, x: np.ndarray) -> float:
    """H(Y | X) in bits for discrete vectors ``y`` and ``x``."""
    table = _contingency(x, y)
    n = table.sum()
    if n == 0:
        return 0.0
    h = 0.0
    for row in table:
        row_total = row.sum()
        if row_total > 0:
            h += (row_total / n) * entropy_from_counts(row)
    return float(h)


def information_gain(y: np.ndarray, x: np.ndarray) -> float:
    """Information gain IG(Y; X) = H(Y) - H(Y|X) for discrete vectors.

    This is what Weka's ``InfoGainAttributeEval`` computes per attribute
    (after discretisation for numeric attributes).
    """
    gain = entropy(y) - conditional_entropy(y, x)
    # Clip tiny negative values caused by floating-point error.
    return max(0.0, float(gain))


def symmetrical_uncertainty(x: np.ndarray, y: np.ndarray) -> float:
    """Symmetrical uncertainty SU(X, Y) = 2 * IG / (H(X) + H(Y)).

    SU is the correlation measure used by CFS.  It is information gain
    normalised to [0, 1] so that attributes with many values are not
    unfairly favoured.  Returns 0 when both entropies are zero.
    """
    h_x = entropy(x)
    h_y = entropy(y)
    denom = h_x + h_y
    if denom <= 0:
        return 0.0
    gain = information_gain(y, x)
    return float(min(1.0, 2.0 * gain / denom))


def equal_frequency_bins(values: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """Cut points for equal-frequency binning of a continuous vector.

    Returns the interior cut points (length <= n_bins - 1, deduplicated),
    suitable for :func:`numpy.searchsorted` / :func:`discretize`.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0 or n_bins == 1:
        return np.empty(0)
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    cuts = np.quantile(finite, quantiles)
    return np.unique(cuts)


def discretize(values: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Map continuous values to integer bin ids given sorted cut points.

    Non-finite values are mapped to an extra bin past the last one so
    they never collide with real data.
    """
    values = np.asarray(values, dtype=float)
    cuts = np.asarray(cuts, dtype=float)
    bins = np.searchsorted(cuts, values, side="right")
    bins = bins.astype(np.int64)
    bins[~np.isfinite(values)] = len(cuts) + 1
    return bins


def _mdl_accept(y: np.ndarray, left: np.ndarray, right: np.ndarray) -> bool:
    """Fayyad-Irani MDL acceptance criterion for a candidate binary split."""
    n = y.size
    h_full = entropy(y)
    h_left = entropy(left)
    h_right = entropy(right)
    gain = h_full - (left.size / n) * h_left - (right.size / n) * h_right
    k = np.unique(y).size
    k_left = np.unique(left).size
    k_right = np.unique(right).size
    delta = (
        math.log2(3.0**k - 2.0)
        - (k * h_full - k_left * h_left - k_right * h_right)
    )
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


def _entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Entropy (bits) of each row of a (m, k) count matrix."""
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(totals > 0, counts / totals, 0.0)
        terms = np.where(p > 0, p * np.log2(p), 0.0)
    return -terms.sum(axis=1)


def mdl_discretize(
    values: np.ndarray,
    labels: np.ndarray,
    max_depth: int = 8,
    fallback_bins: Optional[int] = 10,
) -> np.ndarray:
    """Supervised discretisation cut points via Fayyad-Irani MDL.

    Recursively picks the boundary that minimises class-conditional
    entropy, accepting it only if it passes the MDL criterion — the
    behaviour of Weka's default ``Discretize`` filter used under both
    ``InfoGainAttributeEval`` and ``CfsSubsetEval``.

    If no cut is accepted at the top level and ``fallback_bins`` is not
    None, equal-frequency cut points are returned instead so downstream
    rankers still see *some* structure (Weka instead produces a single
    "all" bin; the fallback gives strictly more information and avoids
    degenerate all-zero rankings on small samples).
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    order = np.argsort(values, kind="mergesort")
    v = values[order]
    _, y = np.unique(labels[order], return_inverse=True)
    n_classes = int(y.max()) + 1 if y.size else 0

    cuts: list[float] = []

    def recurse(lo: int, hi: int, depth: int) -> None:
        if depth >= max_depth or hi - lo < 4:
            return
        seg_v = v[lo:hi]
        seg_y = y[lo:hi]
        change = np.nonzero(np.diff(seg_v) > 0)[0]
        if change.size == 0:
            return
        n = seg_y.size
        # Vectorised search: class-count prefix sums give left/right
        # count matrices at every candidate boundary in one shot.
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), seg_y] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        total = prefix[-1]
        left_counts = prefix[change]
        right_counts = total - left_counts
        n_left = change + 1.0
        n_right = n - n_left
        h = (
            n_left * _entropy_rows(left_counts)
            + n_right * _entropy_rows(right_counts)
        ) / n
        best_pos = int(np.argmin(h))
        best_idx = int(change[best_pos])
        left = seg_y[: best_idx + 1]
        right = seg_y[best_idx + 1 :]
        if not _mdl_accept(seg_y, left, right):
            return
        cut = 0.5 * (seg_v[best_idx] + seg_v[best_idx + 1])
        cuts.append(float(cut))
        recurse(lo, lo + best_idx + 1, depth + 1)
        recurse(lo + best_idx + 1, hi, depth + 1)

    finite_mask = np.isfinite(v)
    lo = int(np.argmax(finite_mask)) if finite_mask.any() else 0
    hi = int(finite_mask.sum()) + lo
    if hi - lo >= 4:
        recurse(lo, hi, 0)

    if not cuts and fallback_bins:
        return equal_frequency_bins(values, fallback_bins)
    return np.unique(np.asarray(cuts, dtype=float))
