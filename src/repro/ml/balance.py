"""Class balancing used before training the paper's classifiers.

§4.1: "we balance the number of instances among the three classes
before training the classifier.  The instances in the classes are then
restored to their original numbers for testing."

Two strategies are provided: random undersampling to the minority-class
size (default — it matches Weka's ``SpreadSubsample``) and random
oversampling with replacement to the majority-class size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["undersample", "oversample", "balanced_indices"]


def balanced_indices(
    y: np.ndarray,
    strategy: str = "under",
    random_state=None,
) -> np.ndarray:
    """Indices selecting a class-balanced subset (or superset) of ``y``.

    ``strategy="under"`` draws ``min(class sizes)`` samples per class
    without replacement; ``strategy="over"`` draws ``max(class sizes)``
    per class with replacement.  The returned indices are shuffled.
    """
    y = np.asarray(y)
    if y.size == 0:
        raise ValueError("cannot balance an empty label vector")
    rng = np.random.default_rng(random_state)
    classes, counts = np.unique(y, return_counts=True)
    if strategy == "under":
        target = int(counts.min())
        replace = False
    elif strategy == "over":
        target = int(counts.max())
        replace = True
    else:
        raise ValueError(f"unknown strategy: {strategy!r}")
    picks = []
    for c in classes:
        idx = np.nonzero(y == c)[0]
        if replace and idx.size < target:
            picks.append(rng.choice(idx, size=target, replace=True))
        else:
            picks.append(rng.choice(idx, size=target, replace=False))
    out = np.concatenate(picks)
    return rng.permutation(out)


def undersample(
    X: np.ndarray, y: np.ndarray, random_state=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Random undersampling of (X, y) to the minority-class size."""
    idx = balanced_indices(y, strategy="under", random_state=random_state)
    return np.asarray(X)[idx], np.asarray(y)[idx]


def oversample(
    X: np.ndarray, y: np.ndarray, random_state=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Random oversampling of (X, y) to the majority-class size."""
    idx = balanced_indices(y, strategy="over", random_state=random_state)
    return np.asarray(X)[idx], np.asarray(y)[idx]
