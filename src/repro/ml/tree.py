"""CART decision-tree classifier implemented on numpy.

This is the base learner for :class:`repro.ml.forest.RandomForestClassifier`.
It supports the features the paper's Weka pipeline depends on:

* Gini or entropy split criterion on continuous features.
* Per-node random feature subsampling (``max_features``) so it can serve
  as a random-forest base learner.
* Probability estimates from leaf class frequencies (used for the
  forest's soft voting).

Split search is vectorised: for each candidate feature the rows are
sorted once and class-count prefix sums give the impurity of every
possible threshold in O(n * k).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


@dataclass
class _TreeBuffers:
    """Growable flat arrays describing the fitted tree."""

    feature: list = field(default_factory=list)    # split feature or _LEAF
    threshold: list = field(default_factory=list)  # split threshold
    left: list = field(default_factory=list)       # left child index
    right: list = field(default_factory=list)      # right child index
    value: list = field(default_factory=list)      # class-count vector

    def add_node(self, counts: np.ndarray) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(counts)
        return len(self.feature) - 1


def _impurity(counts: np.ndarray, criterion: str) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    if criterion == "gini":
        return float(1.0 - (p * p).sum())
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


class DecisionTreeClassifier:
    """CART classifier over continuous features.

    Parameters
    ----------
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    max_depth:
        Maximum tree depth; ``None`` grows until pure/exhausted.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per node. ``None`` uses all,
        ``"sqrt"`` uses ``ceil(sqrt(n_features))`` (the random-forest
        default), or an explicit int.
    random_state:
        Seed or :class:`numpy.random.Generator` for feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion: {criterion!r}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight=None):
        """Grow the tree on ``X`` (n_samples, n_features) and labels ``y``.

        ``sample_weight`` weights both the node class counts (and hence
        leaf probabilities) and the impurity gains of the split search.
        ``min_samples_split``/``min_samples_leaf`` keep their sklearn
        meaning as raw sample counts.  ``None`` is exactly the
        unweighted fit, bit for bit.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != (X.shape[0],):
                raise ValueError(
                    "sample_weight must be 1-dimensional with one weight "
                    f"per sample, got shape {sample_weight.shape}"
                )
            if not np.all(np.isfinite(sample_weight)) or np.any(
                sample_weight < 0
            ):
                raise ValueError("sample_weight must be finite and >= 0")
            if sample_weight.sum() <= 0:
                raise ValueError("sample_weight must not sum to zero")

        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_classes_ = self.classes_.size
        self.n_features_ = X.shape[1]
        self._rng = (
            self.random_state
            if isinstance(self.random_state, np.random.Generator)
            else np.random.default_rng(self.random_state)
        )
        self._n_sub = self._resolve_max_features()

        buffers = _TreeBuffers()
        indices = np.arange(X.shape[0])
        self._grow(buffers, X, y_enc, sample_weight, indices, depth=0)

        self._feature = np.asarray(buffers.feature, dtype=np.int64)
        self._threshold = np.asarray(buffers.threshold, dtype=float)
        self._left = np.asarray(buffers.left, dtype=np.int64)
        self._right = np.asarray(buffers.right, dtype=np.int64)
        self._value = np.asarray(buffers.value, dtype=float)
        self._backfill_empty_leaves()
        return self

    def _backfill_empty_leaves(self) -> None:
        """Give zero-weight leaves their parent's class distribution.

        A split can isolate rows whose weights are all zero; such a
        leaf carries no evidence of its own, so it inherits the nearest
        ancestor's counts rather than degrading ``predict_proba`` to an
        all-zero row (which ``predict`` would argmax to class 0).
        Nodes are appended parent-before-child, so one ascending pass
        propagates through chains of empty nodes; the root is never
        empty (``fit`` rejects all-zero weights).
        """
        if not np.any(self._value.sum(axis=1) == 0):
            return
        parent = np.zeros(self._feature.size, dtype=np.int64)
        for node in range(self._feature.size):
            if self._feature[node] != _LEAF:
                parent[self._left[node]] = node
                parent[self._right[node]] = node
        for node in range(1, self._feature.size):
            if self._value[node].sum() == 0:
                self._value[node] = self._value[parent[node]]

    def _resolve_max_features(self) -> int:
        mf = self.max_features
        if mf is None:
            return self.n_features_
        if mf == "sqrt":
            return max(1, int(np.ceil(np.sqrt(self.n_features_))))
        if mf == "log2":
            return max(1, int(np.ceil(np.log2(self.n_features_ + 1))))
        n = int(mf)
        if n < 1 or n > self.n_features_:
            raise ValueError("max_features out of range")
        return n

    def _grow(
        self,
        buffers: _TreeBuffers,
        X: np.ndarray,
        y: np.ndarray,
        w: Optional[np.ndarray],
        indices: np.ndarray,
        depth: int,
    ) -> int:
        if w is None:
            counts = np.bincount(
                y[indices], minlength=self.n_classes_
            ).astype(float)
        else:
            counts = np.bincount(
                y[indices], weights=w[indices], minlength=self.n_classes_
            )
        node = buffers.add_node(counts)

        if (
            indices.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node

        split = self._best_split(X, y, w, indices)
        if split is None:
            return node

        feat, thr = split
        mask = X[indices, feat] <= thr
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if (
            left_idx.size < self.min_samples_leaf
            or right_idx.size < self.min_samples_leaf
        ):
            return node

        buffers.feature[node] = feat
        buffers.threshold[node] = thr
        buffers.left[node] = self._grow(buffers, X, y, w, left_idx, depth + 1)
        buffers.right[node] = self._grow(buffers, X, y, w, right_idx, depth + 1)
        return node

    def _best_split(self, X, y, w, indices):
        """Return (feature, threshold) of the impurity-minimising split."""
        n = indices.size
        k = self.n_classes_
        y_node = y[indices]
        if w is None:
            parent_counts = np.bincount(y_node, minlength=k).astype(float)
        else:
            parent_counts = np.bincount(y_node, weights=w[indices], minlength=k)
        parent_imp = _impurity(parent_counts, self.criterion)
        if parent_imp <= 0:
            return None

        if self._n_sub < self.n_features_:
            features = self._rng.choice(
                self.n_features_, size=self._n_sub, replace=False
            )
        else:
            features = np.arange(self.n_features_)

        best_gain = 1e-12
        best: Optional[tuple] = None
        min_leaf = self.min_samples_leaf

        # One-hot label matrix built once per node; each feature only
        # reorders its rows.  Reordering a scatter equals scattering the
        # reordered labels, so the prefix sums (and the chosen split)
        # are unchanged.  With weights, the scatter carries each row's
        # weight and the prefix sums become weighted class masses.
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y_node] = 1.0
        if w is not None:
            onehot *= w[indices][:, None]
        total = parent_counts.sum()

        for feat in features:
            col = X[indices, feat]
            order = np.argsort(col, kind="mergesort")
            v = col[order]
            if v[0] == v[-1]:
                continue
            # one-hot prefix sums -> left counts at every cut position
            prefix = np.cumsum(onehot[order], axis=0)
            # valid cut after position i (1-based count i+1 on the left)
            # only where the value changes
            boundaries = np.nonzero(np.diff(v) > 0)[0]
            if boundaries.size == 0:
                continue
            if min_leaf > 1:
                boundaries = boundaries[
                    (boundaries + 1 >= min_leaf) & (n - boundaries - 1 >= min_leaf)
                ]
                if boundaries.size == 0:
                    continue
            left_counts = prefix[boundaries]
            right_counts = parent_counts - left_counts
            n_left = left_counts.sum(axis=1)
            n_right = total - n_left
            if self.criterion == "gini":
                with np.errstate(invalid="ignore", divide="ignore"):
                    gl = 1.0 - ((left_counts / n_left[:, None]) ** 2).sum(axis=1)
                    gr = 1.0 - ((right_counts / n_right[:, None]) ** 2).sum(axis=1)
            else:
                with np.errstate(invalid="ignore", divide="ignore"):
                    pl = left_counts / n_left[:, None]
                    pr = right_counts / n_right[:, None]
                    gl = -np.nansum(np.where(pl > 0, pl * np.log2(pl), 0.0), axis=1)
                    gr = -np.nansum(np.where(pr > 0, pr * np.log2(pr), 0.0), axis=1)
            child = (n_left * gl + n_right * gr) / total
            gains = parent_imp - child
            # A zero-weight side divides by zero above; such cuts carry
            # no information and must not win the argmax as NaN would.
            gains = np.where(np.isfinite(gains), gains, -np.inf)
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                cut_pos = int(boundaries[best_local])
                thr = 0.5 * (v[cut_pos] + v[cut_pos + 1])
                best = (int(feat), float(thr))
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if not hasattr(self, "_feature"):
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each row of ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("X has the wrong shape")
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[nodes] != _LEAF
        while active.any():
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feat = self._feature[cur]
            go_left = X[idx, feat] <= self._threshold[cur]
            nodes[idx] = np.where(go_left, self._left[cur], self._right[cur])
            active[idx] = self._feature[nodes[idx]] != _LEAF
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates from leaf frequencies.

        Zero-total leaves are backfilled from their parent at fit time;
        should one slip through anyway (e.g. a hand-edited tree), it
        answers the uniform distribution rather than an all-zero row
        that ``predict`` would silently argmax to class 0.
        """
        leaves = self.apply(X)
        counts = self._value[leaves]
        totals = counts.sum(axis=1, keepdims=True)
        empty = totals == 0.0
        if np.any(empty):
            counts = np.where(empty, 1.0, counts)
            totals = np.where(empty, float(self.n_classes_), totals)
        return counts / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class label for each row of ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        self._check_fitted()
        return int(self._feature.size)

    @property
    def max_depth_(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()
        depth = np.zeros(self._feature.size, dtype=np.int64)
        out = 0
        for node in range(self._feature.size):
            if self._feature[node] != _LEAF:
                for child in (self._left[node], self._right[node]):
                    depth[child] = depth[node] + 1
                    out = max(out, int(depth[child]))
        return out

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease feature importances, normalised to sum 1."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)
        total_samples = self._value[0].sum()
        for node in range(self._feature.size):
            feat = self._feature[node]
            if feat == _LEAF:
                continue
            counts = self._value[node]
            left = self._value[self._left[node]]
            right = self._value[self._right[node]]
            n = counts.sum()
            decrease = n * _impurity(counts, self.criterion) - (
                left.sum() * _impurity(left, self.criterion)
                + right.sum() * _impurity(right, self.criterion)
            )
            importances[feat] += decrease / total_samples
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
