"""Cross-validation and train/test-split helpers.

The paper uses 10-fold cross-validation during model development
(§4) and a balanced-train / full-test protocol for the reported
tables.  This module provides stratified k-fold index generation and a
CV runner that aggregates predictions across folds so a single
:func:`repro.ml.metrics.classification_report` can be produced.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from .metrics import ClassificationReport, classification_report
from .parallel import effective_n_jobs, run_tasks

__all__ = ["stratified_kfold", "train_test_split", "cross_validate"]


def stratified_kfold(
    y: np.ndarray,
    n_splits: int = 10,
    shuffle: bool = True,
    random_state=None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class proportions kept.

    Each class's indices are dealt round-robin into the folds, so every
    fold receives ``floor`` or ``ceil`` of the class share — the same
    guarantee scikit-learn's ``StratifiedKFold`` gives.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    classes, y_enc = np.unique(y, return_inverse=True)
    smallest = np.bincount(y_enc).min()
    if smallest < n_splits:
        raise ValueError(
            f"n_splits={n_splits} > smallest class size {smallest}"
        )
    rng = np.random.default_rng(random_state)
    fold_of = np.empty(y.size, dtype=np.int64)
    for c in range(classes.size):
        idx = np.nonzero(y_enc == c)[0]
        if shuffle:
            idx = rng.permutation(idx)
        fold_of[idx] = np.arange(idx.size) % n_splits
    all_idx = np.arange(y.size)
    for fold in range(n_splits):
        test = all_idx[fold_of == fold]
        train = all_idx[fold_of != fold]
        yield train, test


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.3,
    stratify: bool = True,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into (X_train, X_test, y_train, y_test).

    With ``stratify`` the class proportions are preserved in both parts.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y have inconsistent lengths")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n = y.size
    test_mask = np.zeros(n, dtype=bool)
    if stratify:
        _, y_enc = np.unique(y, return_inverse=True)
        for c in np.unique(y_enc):
            idx = rng.permutation(np.nonzero(y_enc == c)[0])
            # Cap at size-1 so every class keeps >= 1 training sample; a
            # singleton class goes entirely to training (n_test = 0)
            # rather than vanishing from the training partition.
            n_test = min(
                max(1, int(round(test_size * idx.size))), idx.size - 1
            )
            test_mask[idx[:n_test]] = True
    else:
        idx = rng.permutation(n)
        test_mask[idx[: max(1, int(round(test_size * n)))]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def _fit_predict_fold(payload):
    """Fit one fold's model and score its test partition.

    Module-level so it pickles into process workers; the model instance
    (not the factory) ships with the payload, which keeps lambdas and
    closures usable as ``model_factory``.
    """
    model, X_train, y_train, X_test = payload
    model.fit(X_train, y_train)
    return model.predict(X_test)


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    random_state=None,
    balance: Optional[Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]] = None,
    labels: Optional[List] = None,
    n_jobs: Optional[int] = 1,
) -> ClassificationReport:
    """k-fold CV; returns one report over the pooled fold predictions.

    ``model_factory`` builds a fresh estimator per fold (anything with
    ``fit``/``predict``).  ``balance`` optionally rebalances each fold's
    *training* partition only — matching the paper's "balance for
    training, restore originals for testing" protocol.  Folds are
    independent, so ``n_jobs > 1`` fits them in parallel worker
    processes; the pooled report is identical for any ``n_jobs``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    predictions = np.empty(y.shape, dtype=y.dtype)
    folds = list(
        stratified_kfold(y, n_splits=n_splits, random_state=random_state)
    )
    payloads = []
    for train_idx, test_idx in folds:
        X_train, y_train = X[train_idx], y[train_idx]
        if balance is not None:
            X_train, y_train = balance(X_train, y_train)
        model = model_factory()
        if effective_n_jobs(n_jobs) > 1 and getattr(model, "n_jobs", None):
            # One pool level is enough: fold workers fit their forests
            # serially (results are n_jobs-invariant anyway).
            model.n_jobs = 1
        payloads.append((model, X_train, y_train, X[test_idx]))
    fold_predictions = run_tasks(
        _fit_predict_fold, payloads, n_jobs=n_jobs, task="cv_fold"
    )
    for (_, test_idx), fold_pred in zip(folds, fold_predictions):
        predictions[test_idx] = fold_pred
    return classification_report(y, predictions, labels=labels)
