"""Classification metrics matching the paper's reporting format.

The paper reports, per class: TP rate, FP rate, Precision and Recall,
plus a weighted average row (Tables 3, 6, 8, 10), and row-normalised
confusion matrices in percent (Tables 4, 7, 9, 11).  This module
produces exactly those quantities so experiment code can print
paper-shaped tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy",
    "ClassReport",
    "ClassificationReport",
    "classification_report",
]


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> np.ndarray:
    """Confusion matrix with true labels on rows, predictions on columns.

    ``labels`` fixes the row/column order; by default the sorted union
    of observed labels is used.  An explicit ``labels`` sequence may be
    a *subset* of the observed labels: pairs whose true or predicted
    label falls outside it are skipped, matching sklearn, so a report
    can be scoped to the classes of interest without a ``KeyError``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        row = index.get(t)
        col = index.get(p)
        if row is None or col is None:
            continue
        matrix[row, col] += 1
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("empty prediction arrays")
    return float(np.mean(y_true == y_pred))


@dataclass
class ClassReport:
    """Per-class row of the paper's classifier-output tables."""

    label: object
    tp_rate: float
    fp_rate: float
    precision: float
    recall: float
    support: int


@dataclass
class ClassificationReport:
    """Full classifier report: per-class rows + weighted average.

    Mirrors Tables 3/6/8/10: one :class:`ClassReport` per class in label
    order, plus a support-weighted average across classes.
    """

    classes: List[ClassReport]
    weighted_tp_rate: float
    weighted_fp_rate: float
    weighted_precision: float
    weighted_recall: float
    accuracy: float
    matrix: np.ndarray
    labels: List[object]

    def row_percentages(self) -> np.ndarray:
        """Row-normalised confusion matrix in percent (Tables 4/7/9/11)."""
        matrix = self.matrix.astype(float)
        totals = matrix.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return 100.0 * matrix / totals

    def by_label(self) -> Dict[object, ClassReport]:
        return {report.label: report for report in self.classes}


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> ClassificationReport:
    """Compute TP/FP rates, precision, recall per class + weighted averages.

    TP rate is identical to recall (the paper reports both columns);
    FP rate for class c is FP_c / (negatives of c); precision is
    TP_c / (TP_c + FP_c), defined as 0 when the class is never predicted.
    """
    if labels is None:
        labels = np.unique(np.concatenate([np.asarray(y_true), np.asarray(y_pred)]))
    labels = list(labels)
    matrix = confusion_matrix(y_true, y_pred, labels=labels)
    n = matrix.sum()
    rows: List[ClassReport] = []
    for i, label in enumerate(labels):
        tp = matrix[i, i]
        fn = matrix[i].sum() - tp
        fp = matrix[:, i].sum() - tp
        tn = n - tp - fn - fp
        support = int(tp + fn)
        recall = tp / support if support else 0.0
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        fp_rate = fp / (fp + tn) if (fp + tn) else 0.0
        rows.append(
            ClassReport(
                label=label,
                tp_rate=float(recall),
                fp_rate=float(fp_rate),
                precision=float(precision),
                recall=float(recall),
                support=support,
            )
        )
    supports = np.array([r.support for r in rows], dtype=float)
    total = supports.sum()
    weights = supports / total if total else np.zeros_like(supports)

    def wavg(attr: str) -> float:
        return float(sum(w * getattr(r, attr) for w, r in zip(weights, rows)))

    return ClassificationReport(
        classes=rows,
        weighted_tp_rate=wavg("tp_rate"),
        weighted_fp_rate=wavg("fp_rate"),
        weighted_precision=wavg("precision"),
        weighted_recall=wavg("recall"),
        accuracy=float(np.trace(matrix) / n) if n else 0.0,
        matrix=matrix,
        labels=labels,
    )
