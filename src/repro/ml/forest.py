"""Random Forest classifier built on :mod:`repro.ml.tree`.

The paper's detection models (stall severity, average representation)
are Weka Random Forests.  This implementation follows Breiman's
algorithm: bootstrap-sampled training sets, per-node random feature
subsets of size sqrt(n_features), and aggregation by averaging the
trees' leaf class distributions (soft voting), which is also what Weka
does by default.

Trees are independent once seeded, so both :meth:`fit` and
:meth:`predict_proba` fan out over an ``n_jobs`` worker pool
(:mod:`repro.ml.parallel`).  Each tree draws its RNG from its own
``np.random.SeedSequence.spawn`` child — never from a generator shared
across trees — and floating-point partials are combined per fixed-size
tree block in block order, so a fitted forest and its predictions are
bit-identical for any ``n_jobs`` given the same ``random_state``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.obs import get_registry, trace

from .parallel import block_ranges, run_tasks
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

_REG = get_registry()
_FITS = _REG.counter(
    "repro_ml_forest_fits_total", "Random-Forest ensembles fitted."
)
_PREDICTIONS = _REG.counter(
    "repro_ml_forest_predictions_total",
    "Rows scored through RandomForestClassifier.predict_proba.",
)

#: Trees per dispatched pool task.  Fixed (independent of ``n_jobs``)
#: because float partials are summed per block in block order — the
#: determinism anchor that makes serial and parallel runs bit-identical.
_TREE_BLOCK = 8


def _tree_seed_sequences(random_state, n: int) -> List[np.random.SeedSequence]:
    """One independent SeedSequence per tree.

    Spawned children have disjoint, order-independent streams: tree i
    gets the same stream whether fitted first, last, or in another
    process.  (Handing one shared Generator to every tree — the old
    scheme — made each tree's stream depend on how much entropy the
    previous trees consumed, which is inherently serial.)
    """
    if isinstance(random_state, np.random.SeedSequence):
        base = random_state
    elif isinstance(random_state, np.random.Generator):
        base = np.random.SeedSequence(int(random_state.integers(2**63)))
    else:
        base = np.random.SeedSequence(random_state)
    return base.spawn(n)


def _fit_tree_block(payload):
    """Fit one block of trees; returns (trees, oob_votes_or_None).

    Module-level so it pickles into process workers.  The OOB partial is
    accumulated in tree order within the block; the caller sums block
    partials in block order.
    """
    X, y_enc, n_classes, params, seeds, bootstrap, want_oob = payload
    n = X.shape[0]
    trees: List[DecisionTreeClassifier] = []
    oob_votes = np.zeros((n, n_classes)) if (want_oob and bootstrap) else None
    for seed in seeds:
        rng = np.random.default_rng(seed)
        tree = DecisionTreeClassifier(random_state=rng, **params)
        if bootstrap:
            sample = rng.integers(0, n, size=n)
            tree.fit(X[sample], y_enc[sample])
            if oob_votes is not None:
                mask = np.ones(n, dtype=bool)
                mask[sample] = False
                if mask.any():
                    # A bootstrap sample can miss classes; align the
                    # tree's columns into the forest's class space.
                    rows = np.nonzero(mask)[0]
                    cols = tree.classes_.astype(int)
                    oob_votes[np.ix_(rows, cols)] += tree.predict_proba(X[rows])
        else:
            tree.fit(X, y_enc)
        trees.append(tree)
    return trees, oob_votes


def _predict_proba_block(payload):
    """Summed class votes of one block of trees over ``X``."""
    trees, X, n_classes = payload
    proba = np.zeros((X.shape[0], n_classes))
    for tree in trees:
        # Trees are fitted on encoded labels spanning all classes seen
        # by the forest, but a bootstrap sample may miss some classes:
        # align the tree's columns into the forest's class space.
        tree_proba = tree.predict_proba(X)
        cols = tree.classes_.astype(int)
        proba[:, cols] += tree_proba
    return proba


class RandomForestClassifier:
    """Bagged ensemble of CART trees with random feature subsets.

    Parameters
    ----------
    n_estimators:
        Number of trees (Weka's default is 100; the experiments here use
        smaller forests where runtime matters, without changing results
        qualitatively).
    criterion, max_depth, min_samples_split, min_samples_leaf:
        Passed to each :class:`DecisionTreeClassifier`.
    max_features:
        Per-node feature-subset size; defaults to ``"sqrt"``.
    bootstrap:
        Draw each tree's training set with replacement (size n).  When
        False every tree sees the full training set and only feature
        subsampling decorrelates them.
    oob_score:
        When True (and bootstrap), compute the out-of-bag accuracy after
        fitting and expose it as ``oob_score_``.
    random_state:
        Seed for reproducible resampling and feature subsampling.
    n_jobs:
        Worker processes for fitting and prediction.  ``None``/1 runs
        serially; ``-1`` uses all cores.  Results are bit-identical for
        any value.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state=None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, X: np.ndarray, y: np.ndarray):
        """Fit the ensemble on ``X`` (n_samples, n_features), labels ``y``."""
        with trace("ml.forest_fit") as span:
            self._fit(X, y)
            span.add("trees", self.n_estimators)
            span.add("rows", int(np.asarray(X).shape[0]))
        _FITS.inc()
        return self

    def _tree_params(self) -> dict:
        return {
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def _fit(self, X: np.ndarray, y: np.ndarray):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]

        seeds = _tree_seed_sequences(self.random_state, self.n_estimators)
        params = self._tree_params()
        want_oob = self.oob_score and self.bootstrap
        payloads = [
            (X, y_enc, self.classes_.size, params, seeds[a:b],
             self.bootstrap, want_oob)
            for a, b in block_ranges(self.n_estimators, _TREE_BLOCK)
        ]
        results = run_tasks(
            _fit_tree_block, payloads, n_jobs=self.n_jobs, task="forest_fit"
        )

        self.estimators_ = []
        oob_votes = np.zeros((n, self.classes_.size)) if want_oob else None
        for trees, oob_partial in results:
            self.estimators_.extend(trees)
            if oob_votes is not None and oob_partial is not None:
                oob_votes += oob_partial

        if oob_votes is not None:
            seen = oob_votes.sum(axis=1) > 0
            if seen.any():
                pred = np.argmax(oob_votes[seen], axis=1)
                self.oob_score_ = float(np.mean(pred == y_enc[seen]))
            else:
                self.oob_score_ = float("nan")
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "estimators_"):
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of the trees' leaf class distributions."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(
                f"X must be 2-dimensional, got ndim={X.ndim}; reshape a "
                "single sample to (1, n_features)"
            )
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the forest was fitted "
                f"with {self.n_features_}"
            )
        with trace("ml.forest_predict") as span:
            payloads = [
                (self.estimators_[a:b], X, self.classes_.size)
                for a, b in block_ranges(len(self.estimators_), _TREE_BLOCK)
            ]
            partials = run_tasks(
                _predict_proba_block,
                payloads,
                n_jobs=self.n_jobs,
                task="forest_predict",
            )
            proba = np.zeros((X.shape[0], self.classes_.size))
            for partial in partials:
                proba += partial
            span.add("rows", X.shape[0])
        _PREDICTIONS.inc(X.shape[0])
        return proba / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority (soft) vote of the ensemble."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)
        for tree in self.estimators_:
            importances += tree.feature_importances()
        importances /= len(self.estimators_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
