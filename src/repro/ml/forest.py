"""Random Forest classifier built on :mod:`repro.ml.tree`.

The paper's detection models (stall severity, average representation)
are Weka Random Forests.  This implementation follows Breiman's
algorithm: bootstrap-sampled training sets, per-node random feature
subsets of size sqrt(n_features), and aggregation by averaging the
trees' leaf class distributions (soft voting), which is also what Weka
does by default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import get_registry, trace

from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

_REG = get_registry()
_FITS = _REG.counter(
    "repro_ml_forest_fits_total", "Random-Forest ensembles fitted."
)
_PREDICTIONS = _REG.counter(
    "repro_ml_forest_predictions_total",
    "Rows scored through RandomForestClassifier.predict_proba.",
)


class RandomForestClassifier:
    """Bagged ensemble of CART trees with random feature subsets.

    Parameters
    ----------
    n_estimators:
        Number of trees (Weka's default is 100; the experiments here use
        smaller forests where runtime matters, without changing results
        qualitatively).
    criterion, max_depth, min_samples_split, min_samples_leaf:
        Passed to each :class:`DecisionTreeClassifier`.
    max_features:
        Per-node feature-subset size; defaults to ``"sqrt"``.
    bootstrap:
        Draw each tree's training set with replacement (size n).  When
        False every tree sees the full training set and only feature
        subsampling decorrelates them.
    oob_score:
        When True (and bootstrap), compute the out-of-bag accuracy after
        fitting and expose it as ``oob_score_``.
    random_state:
        Seed for reproducible resampling and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state=None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray):
        """Fit the ensemble on ``X`` (n_samples, n_features), labels ``y``."""
        with trace("ml.forest_fit") as span:
            self._fit(X, y)
            span.add("trees", self.n_estimators)
            span.add("rows", int(np.asarray(X).shape[0]))
        _FITS.inc()
        return self

    def _fit(self, X: np.ndarray, y: np.ndarray):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.random_state)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self.estimators_ = []

        oob_votes = (
            np.zeros((n, self.classes_.size)) if (self.oob_score and self.bootstrap) else None
        )

        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y_enc[sample])
                if oob_votes is not None:
                    mask = np.ones(n, dtype=bool)
                    mask[sample] = False
                    if mask.any():
                        oob_votes[mask] += tree.predict_proba(X[mask])
            else:
                tree.fit(X, y_enc)
            self.estimators_.append(tree)

        if oob_votes is not None:
            seen = oob_votes.sum(axis=1) > 0
            if seen.any():
                pred = np.argmax(oob_votes[seen], axis=1)
                self.oob_score_ = float(np.mean(pred == y_enc[seen]))
            else:
                self.oob_score_ = float("nan")
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "estimators_"):
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of the trees' leaf class distributions."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        with trace("ml.forest_predict") as span:
            proba = np.zeros((X.shape[0], self.classes_.size))
            for tree in self.estimators_:
                # Trees are fitted on encoded labels spanning all classes
                # seen by the forest, but a bootstrap sample may miss some
                # classes: align the tree's columns into the forest's
                # class space.
                tree_proba = tree.predict_proba(X)
                cols = tree.classes_.astype(int)
                proba[:, cols] += tree_proba
            span.add("rows", X.shape[0])
        _PREDICTIONS.inc(X.shape[0])
        return proba / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority (soft) vote of the ensemble."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)
        for tree in self.estimators_:
            importances += tree.feature_importances()
        importances /= len(self.estimators_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
