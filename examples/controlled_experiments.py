#!/usr/bin/env python
"""Controlled lab experiments: forcing impairments and watching the
signals the paper's detectors key on.

Reproduces the mechanics behind Figures 1 and 3 with ASCII plots:

* a progressive session pushed through two coverage outages — the
  chunk sizes collapse at each stall and ramp back (Figure 1);
* a DASH session that starts at 144p and climbs to 480p — Δt and
  Δsize spike at every representation switch (Figure 3);
* the CUSUM switch score of both a steady and a switching session.

Run:  python examples/controlled_experiments.py
"""

import numpy as np

from repro.core.switching import SwitchDetector
from repro.datasets.preparation import record_from_video_session
from repro.experiments.figures import figure1_chunk_sizes, figure3_switch_session
from repro.network.path import NetworkPath
from repro.streaming.adaptive import AdaptivePlayer
from repro.streaming.catalog import Video
from repro.timeseries.detection import product_series


def ascii_series(values, width: int = 48, height: int = 8) -> str:
    """Tiny ASCII bar rendering of a series."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return "(empty)"
    top = values.max() or 1.0
    step = max(1, values.size // width)
    sampled = values[::step][:width]
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        rows.append(
            "".join("#" if v >= threshold else " " for v in sampled)
        )
    rows.append("-" * len(sampled))
    return "\n".join(rows)


def figure1_demo() -> None:
    print("=" * 64)
    print("Figure 1 — chunk sizes in a session with forced stalls")
    print("=" * 64)
    data = figure1_chunk_sizes(seed=5)
    print(ascii_series(data.sizes_bytes))
    print(
        f"stalls begin at t = "
        f"{[round(t, 1) for t in data.stall_starts_s]} s; chunks shrink "
        f"right after each stall: {data.sizes_dip_after_stalls()}"
    )
    print(f"min chunk {data.sizes_bytes.min()/1e3:.0f} KB, "
          f"max {data.sizes_bytes.max()/1e3:.0f} KB\n")


def figure3_demo() -> None:
    print("=" * 64)
    print("Figure 3 — Δt and Δsize around representation switches")
    print("=" * 64)
    data = figure3_switch_session(seed=12)
    print("chunk sizes:")
    print(ascii_series(data.sizes_bytes))
    walk = " -> ".join(
        f"{r}p" for r in dict.fromkeys(data.resolutions.tolist())
    )
    print(f"resolution walk: {walk}")
    dt, dsize = data.deltas()
    print(f"Δt ranges {dt.min():.2f}..{dt.max():.2f} s, "
          f"Δsize ranges {dsize.min()/1e3:.0f}..{dsize.max()/1e3:.0f} KB\n")


def cusum_demo() -> None:
    print("=" * 64)
    print("CUSUM switch score: steady vs switching session")
    print("=" * 64)
    from repro.network.path import Outage
    from repro.streaming.adaptive import AdaptivePlayerConfig
    from repro.streaming.catalog import DASH_LADDER

    rng = np.random.default_rng(42)
    video = Video(video_id="cusum-demo0", duration_s=240.0)
    # Same quality scale for both sessions: the score is unit-bearing
    # (KB x s), so comparisons should hold the ladder fixed.
    config = AdaptivePlayerConfig(
        ladder=[q for q in DASH_LADDER if q.resolution_p <= 360],
        mean_patience_stall_s=300.0,
    )

    # Same regime for both sessions; only the outages differ.
    steady_path = NetworkPath("good", 1200.0, rng)
    steady = AdaptivePlayer(config).play(video, steady_path, rng)

    # Cold start (no bandwidth hint) + mid-session outages: the player
    # walks the ladder up at the start and drops during the outages.
    switch_config = AdaptivePlayerConfig(
        ladder=config.ladder,
        mean_patience_stall_s=300.0,
        initial_bandwidth_hint=False,
    )
    rough_path = NetworkPath(
        "good",
        1200.0,
        rng,
        outages=[Outage(40.0, 80.0, 0.03), Outage(140.0, 170.0, 0.05)],
    )
    switching = AdaptivePlayer(switch_config).play(video, rough_path, rng)

    detector = SwitchDetector()
    for name, session in (("steady", steady), ("switching", switching)):
        record = record_from_video_session(session)
        score = detector.score(record)
        series = product_series(record.timestamps, record.sizes / 1000.0)
        print(
            f"{name:10s}: {session.switch_count()} switches, "
            f"score STD(CUSUM(Δsize×Δt)) = {score:8.1f}, "
            f"series length {series.size}"
        )
    print(
        f"\nsessions scoring above the calibrated threshold "
        f"(~{detector.threshold:.0f} by default) are flagged as having "
        "quality switches — no DPI, no ground truth needed."
    )


def main() -> None:
    figure1_demo()
    figure3_demo()
    cusum_demo()


if __name__ == "__main__":
    main()
