#!/usr/bin/env python
"""Busy-hour analysis: QoE by time of day, from encrypted traffic.

Operators slice QoE by hour to plan capacity (the paper's motivation:
"operators ... have to radically rethink and optimize their network").
With the diurnal load model enabled, evening sessions ride congested
cells; the framework — trained on cleartext, applied to encrypted
traffic — surfaces the busy hour without any ground truth.

Run:  python examples/busy_hour_analysis.py
"""

from collections import defaultdict

import numpy as np

from repro import QoEFramework
from repro.datasets import (
    CorpusConfig,
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_corpus,
)
from repro.network import DiurnalLoadModel


def main() -> None:
    print("training framework on cleartext ground truth ...")
    cleartext = generate_cleartext_corpus(350, seed=30)
    adaptive = generate_adaptive_corpus(200, seed=31)
    framework = QoEFramework(random_state=0, n_estimators=25).fit(
        cleartext.records_with_stall_truth(),
        [r for r in adaptive.records if r.resolutions is not None],
    )

    print("capturing one day of encrypted traffic with diurnal load ...")
    corpus = generate_corpus(
        CorpusConfig(
            n_sessions=500,
            seed=32,
            adaptive_fraction=0.2,
            encrypted=True,
            diurnal=DiurnalLoadModel(busy_hour_capacity_factor=0.3),
            session_gap_s=(60.0, 360.0),
        )
    )

    diagnoses = framework.diagnose(corpus.records)

    # Congestion rarely shows up as stalls — adaptive players absorb it
    # by downswitching — so the per-daypart KPI is the estimated MOS,
    # which charges both low quality and stalling.
    from repro.core.mos import mos_from_diagnosis

    DAYPARTS = (
        ("night (00-06)", range(0, 6)),
        ("morning (06-12)", range(6, 12)),
        ("afternoon (12-18)", range(12, 18)),
        ("evening (18-24)", range(18, 24)),
    )
    by_part = defaultdict(lambda: {"mos": [], "ld": 0, "sessions": 0})
    for record, diagnosis in zip(corpus.records, diagnoses):
        hour = int((record.timestamps[0] / 3600.0) % 24)
        part = next(name for name, hours in DAYPARTS if hour in hours)
        bucket = by_part[part]
        bucket["sessions"] += 1
        bucket["mos"].append(mos_from_diagnosis(diagnosis).mos)
        if diagnosis.representation_class == "LD":
            bucket["ld"] += 1

    print("\nestimated QoE by daypart (from encrypted traffic only):")
    worst_part, worst_mos = None, 10.0
    for part, _ in DAYPARTS:
        bucket = by_part[part]
        if not bucket["sessions"]:
            continue
        mean_mos = float(np.mean(bucket["mos"]))
        ld_share = bucket["ld"] / bucket["sessions"]
        bar = "#" * int(mean_mos * 10)
        print(
            f"  {part:<18} {bucket['sessions']:>4} sessions  "
            f"MOS {mean_mos:.2f} {bar}  (LD share {ld_share:.0%})"
        )
        if mean_mos < worst_mos:
            worst_part, worst_mos = part, mean_mos
    print(
        f"\nworst daypart: {worst_part} (mean MOS {worst_mos:.2f}) — "
        "players absorb evening congestion by dropping quality, and the "
        "framework surfaces it without decrypting a single byte."
    )


if __name__ == "__main__":
    main()
