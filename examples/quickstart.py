#!/usr/bin/env python
"""Quickstart: train the QoE framework on cleartext traffic and apply
it to encrypted traffic — the paper's end-to-end workflow in ~40 lines.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro import QoEFramework
from repro.datasets import (
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_encrypted_corpus,
)


def main() -> None:
    # 1. The operator's cleartext corpus: URIs still carry ground truth
    #    (itag -> resolution, playback reports -> stalls).
    print("generating cleartext training corpus ...")
    cleartext = generate_cleartext_corpus(400, seed=1)
    adaptive = generate_adaptive_corpus(250, seed=2)

    stall_records = cleartext.records_with_stall_truth()
    adaptive_records = [
        r for r in adaptive.records if r.resolutions is not None
    ]

    # 2. Train all three detectors once, on cleartext ground truth.
    print("training the QoE framework (stalls, representation, switching) ...")
    framework = QoEFramework(random_state=0, n_estimators=30)
    framework.fit(stall_records, adaptive_records)
    print(f"  stall model features:  {framework.stall.selected_names_}")
    print(f"  switch threshold:      {framework.switching.threshold:.0f}")

    # 3. Encrypted traffic appears: no URIs, no session ids — only
    #    sizes, timings and TCP statistics survive TLS.
    print("generating encrypted traffic (instrumented commuter) ...")
    encrypted = generate_encrypted_corpus(120, seed=3)

    # 4. Diagnose every reconstructed encrypted session.
    diagnoses = framework.diagnose(encrypted.records)

    print(f"\ndiagnosed {len(diagnoses)} encrypted sessions:")
    print("  stalling:      ", dict(Counter(d.stall_class for d in diagnoses)))
    print(
        "  representation:",
        dict(Counter(d.representation_class for d in diagnoses)),
    )
    print(
        "  has switches:  ",
        dict(Counter(d.has_quality_switches for d in diagnoses)),
    )

    # 5. Since this is a simulation we can check against ground truth.
    with_truth = [
        (d, r)
        for d, r in zip(diagnoses, encrypted.records)
        if r.stall_duration_s is not None and r.total_duration_s
    ]
    from repro.core import stall_label

    correct = sum(1 for d, r in with_truth if d.stall_class == stall_label(r))
    print(
        f"\nstall-class accuracy vs hidden ground truth: "
        f"{correct / len(with_truth):.1%}  ({correct}/{len(with_truth)})"
    )


if __name__ == "__main__":
    main()
