#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints the full evaluation section — Figures 1-5, Tables 2-11, §5.6 and
the Prometheus-baseline comparison — with paper reference values noted
inline by the renderers.

Run:  python examples/reproduce_paper.py [--full]

The default uses the SMALL experiment config (a couple of minutes);
``--full`` uses the benchmark-scale config (tens of minutes).
"""

import sys
import time

from repro.experiments import FULL, SMALL, run_all


def main() -> None:
    config = FULL if "--full" in sys.argv[1:] else SMALL
    print(
        f"running all experiments with {config.cleartext_sessions} cleartext / "
        f"{config.adaptive_sessions} adaptive / "
        f"{config.encrypted_sessions} encrypted sessions ...\n"
    )
    started = time.time()
    print(run_all(config))
    print(f"\n[total: {time.time() - started:.0f}s]")


if __name__ == "__main__":
    main()
