#!/usr/bin/env python
"""Real-time QoE dashboard: live diagnosis, MOS scoring and alarms.

Extends the operator scenario with the library's extension features:

* :class:`repro.realtime.RealTimeMonitor` — sessions are diagnosed the
  moment they close in the live weblog stream, not in a batch job;
* :func:`repro.core.mos_from_diagnosis` — each diagnosis is converted
  to an estimated Mean Opinion Score;
* :mod:`repro.persistence` — the trained models are saved to JSON and
  reloaded, as a long-running monitoring daemon would do.

Run:  python examples/realtime_dashboard.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import QoEFramework
from repro.core.mos import mos_from_diagnosis
from repro.datasets import (
    CorpusConfig,
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_corpus,
)
from repro.network.mobility import COMMUTER_USER, STATIC_USER
from repro.persistence import load_framework, save_framework
from repro.realtime import RealTimeMonitor


def train_and_persist(model_path: Path) -> None:
    print("== one-off training, then persist the models to JSON ==")
    cleartext = generate_cleartext_corpus(350, seed=20)
    adaptive = generate_adaptive_corpus(220, seed=21)
    framework = QoEFramework(random_state=0, n_estimators=25).fit(
        cleartext.records_with_stall_truth(),
        [r for r in adaptive.records if r.resolutions is not None],
    )
    save_framework(framework, model_path)
    print(f"   models written to {model_path} "
          f"({model_path.stat().st_size / 1024:.0f} KB of JSON)\n")


def live_monitoring(model_path: Path) -> None:
    print("== monitoring daemon: reload models, watch the live stream ==")
    framework = load_framework(model_path)

    scores = []

    def on_diagnosis(diagnosis):
        breakdown = mos_from_diagnosis(diagnosis)
        scores.append(breakdown.mos)
        flag = "⚠" if diagnosis.stall_class != "no stalls" else " "
        print(
            f"  {flag} session closed: stalls={diagnosis.stall_class:<14} "
            f"quality={diagnosis.representation_class:<3} "
            f"switches={str(diagnosis.has_quality_switches):<5} "
            f"-> MOS {breakdown.mos:.2f}"
        )

    monitor = RealTimeMonitor(
        framework,
        severe_alarm_after=3,
        on_diagnosis=on_diagnosis,
    )

    # Two subscribers' encrypted streams, interleaved by timestamp.
    streams = []
    for i, mobility in enumerate((COMMUTER_USER, STATIC_USER)):
        corpus = generate_corpus(
            CorpusConfig(
                n_sessions=12,
                seed=200 + i,
                adaptive_fraction=1.0,
                mobility=mobility,
                encrypted=True,
                single_subscriber=True,
            )
        )
        for entry in corpus.weblogs:
            entry.subscriber_id = f"sub-{i:02d}"
        streams.extend(corpus.weblogs)
    streams.sort(key=lambda e: e.timestamp_s)

    monitor.feed_many(streams)
    monitor.flush()

    print("\n== dashboard summary ==")
    for subscriber, health in sorted(monitor.health.items()):
        print(
            f"   {subscriber}: {health.sessions} sessions, "
            f"stall ratio {health.stall_ratio:.0%}, "
            f"severe {health.severe}, LD {health.low_definition}"
        )
    if scores:
        print(f"   mean estimated MOS across sessions: {np.mean(scores):.2f}")
    for alarm in monitor.alarms:
        print(f"   ALARM {alarm.subscriber_id}: {alarm.reason} "
              f"(after {alarm.sessions_observed} sessions)")
    if not monitor.alarms:
        print("   no alarms raised")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "qoe-models.json"
        train_and_persist(model_path)
        live_monitoring(model_path)


if __name__ == "__main__":
    main()
