#!/usr/bin/env python
"""Operator scenario: passive QoE monitoring of encrypted subscribers.

This is the workload the paper's introduction motivates: a mobile
operator that can no longer inspect video traffic (TLS everywhere)
wants per-subscriber QoE reports from a single passive vantage point.

The script:

1. trains the framework on historical cleartext weblogs (the training
   phase only has to happen once, while ground truth is available);
2. receives the encrypted weblog stream of several subscribers —
   URIs gone, only SNI + sizes + timings + TCP statistics remain;
3. regroups the flows into video sessions with the §5.2 reconstruction
   heuristic (domain filter, signalling patterns, idle gaps);
4. emits a per-subscriber QoE report in real-time-monitoring style.

Run:  python examples/operator_monitoring.py
"""

from collections import defaultdict

from repro import QoEFramework
from repro.capture.reconstruction import SessionReconstructor
from repro.datasets import (
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_corpus,
    CorpusConfig,
)
from repro.datasets.preparation import records_from_reconstruction
from repro.network.mobility import COMMUTER_USER


def train_framework() -> QoEFramework:
    """One-off training phase on cleartext ground truth."""
    print("== training phase (cleartext weblogs with URI ground truth) ==")
    cleartext = generate_cleartext_corpus(400, seed=10)
    adaptive = generate_adaptive_corpus(250, seed=11)
    framework = QoEFramework(random_state=0, n_estimators=30)
    framework.fit(
        cleartext.records_with_stall_truth(),
        [r for r in adaptive.records if r.resolutions is not None],
    )
    print(f"   stall features: {framework.stall.selected_names_}")
    print(f"   representation features: "
          f"{framework.representation.selected_names_[:5]} ...")
    return framework


def capture_encrypted_subscribers(n_subscribers: int = 4):
    """Encrypted weblog streams of several commuting subscribers."""
    print("\n== capture phase (encrypted weblogs, per subscriber) ==")
    streams = {}
    for i in range(n_subscribers):
        corpus = generate_corpus(
            CorpusConfig(
                n_sessions=25,
                seed=100 + i,
                adaptive_fraction=1.0,
                mobility=COMMUTER_USER,
                encrypted=True,
                single_subscriber=True,
            )
        )
        streams[f"subscriber-{i:02d}"] = corpus.weblogs
        print(
            f"   {f'subscriber-{i:02d}'}: {len(corpus.weblogs)} weblog "
            f"entries, {len(corpus.sessions)} (hidden) video sessions"
        )
    return streams


def monitor(framework: QoEFramework, streams) -> None:
    """Reconstruct sessions per subscriber and report their QoE."""
    print("\n== monitoring phase (session reconstruction + diagnosis) ==")
    reconstructor = SessionReconstructor()
    for subscriber, weblogs in streams.items():
        reconstructed = reconstructor.reconstruct(weblogs)
        records = records_from_reconstruction(reconstructed, [], [])
        if not records:
            print(f"   {subscriber}: no video sessions observed")
            continue
        diagnoses = framework.diagnose(records)
        stalled = [
            d for d in diagnoses if d.stall_class != "no stalls"
        ]
        severe = [d for d in diagnoses if d.stall_class == "severe stalls"]
        low_quality = [
            d for d in diagnoses if d.representation_class == "LD"
        ]
        switchy = [d for d in diagnoses if d.has_quality_switches]
        flag = "!!" if len(severe) >= 3 else ("! " if stalled else "  ")
        print(
            f" {flag}{subscriber}: {len(diagnoses)} sessions | "
            f"stalled {len(stalled)} (severe {len(severe)}) | "
            f"LD quality {len(low_quality)} | with switches {len(switchy)}"
        )
    print(
        "\nsubscribers flagged '!!' would be candidates for radio-resource "
        "or CDN-path investigation — derived entirely from encrypted flows."
    )


def main() -> None:
    framework = train_framework()
    streams = capture_encrypted_subscribers()
    monitor(framework, streams)


if __name__ == "__main__":
    main()
